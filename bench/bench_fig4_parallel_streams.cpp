//===- bench/bench_fig4_parallel_streams.cpp ---------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Fig 4: GridFTP with parallel data transfer.
/// Transfer times for 256/512/1024/2048 MB files from THU (alpha2) to the
/// Li-Zen site (lz04) — the long, lossy 30 Mb/s path — comparing
/// no-parallelism stream mode against Extended Block Mode with 1, 2, 4, 8
/// and 16 TCP streams.
///
/// Expected shape (paper §4.2): "parallel data transfer technique showed
/// better performance for larger file sizes"; aggregate bandwidth rises
/// with stream count until the 30 Mb/s bottleneck saturates; and MODE E
/// with one stream is *not* identical to stream mode (framing +
/// negotiation overhead).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "exp/Options.h"

#include <cstdlib>

using namespace dgsim;
using namespace dgsim::units;

int main(int argc, char **argv) {
  exp::BenchOptions Opt =
      exp::parseBenchOptions(argc, argv, "fig4", /*BaseSeed=*/2005);
  bench::banner(
      "Fig 4: GridFTP with parallel data transfer",
      "transfer time, THU alpha2 -> Li-Zen lz04, stream mode vs MODE E "
      "x{1,2,4,8,16}");

  exp::Scenario S;
  S.Id = Opt.Id;
  S.Title = "Fig 4: GridFTP parallel streams on the 30 Mb/s path";
  std::vector<std::string> Sizes = {"256", "512", "1024", "2048"};
  if (Opt.Quick)
    Sizes = {"256", "512"};
  // streams axis: 0 = single-connection stream mode, N>0 = MODE E with N
  // parallel TCP streams.
  S.Axes = {{"size_mb", Sizes},
            {"streams", {"0", "1", "2", "4", "8", "16"}}};
  S.Seeds = Opt.seeds();
  S.Metrics = {"transfer_s"};
  S.Run = [](const exp::TrialPoint &P) {
    PaperTestbedOptions Options;
    Options.Seed = P.Seed;
    Options.DynamicLoad = false;
    Options.CrossTraffic = false;
    unsigned Streams =
        static_cast<unsigned>(std::atoi(P.param("streams").c_str()));
    TransferResult R = bench::runSingleTransfer(
        Options, "alpha2", "lz04",
        megabytes(std::atof(P.param("size_mb").c_str())),
        Streams == 0 ? TransferProtocol::GridFtpStream
                     : TransferProtocol::GridFtpModeE,
        Streams == 0 ? 1 : Streams);
    exp::TrialResult Result;
    Result.set("transfer_s", R.totalSeconds());
    Result.SpecHash = PaperTestbed::spec(Options).hash();
    return Result;
  };
  std::vector<exp::TrialRecord> Records = exp::runScenario(S, Opt);

  auto Mean = [&](const std::string &Size, const char *Streams) {
    double Sum = 0.0;
    size_t Count = 0;
    for (const exp::TrialRecord &R : Records)
      if (R.Point.param("size_mb") == Size &&
          R.Point.param("streams") == Streams) {
        Sum += R.Result.get("transfer_s");
        ++Count;
      }
    return Sum / static_cast<double>(Count);
  };

  Table T;
  T.setHeader({"file size", "stream mode", "1 stream", "2 streams",
               "4 streams", "8 streams", "16 streams"});
  bool Monotone = true;        // More streams never hurts.
  bool TwoNearlyHalves = true; // Unsaturated region scales ~linearly.
  bool Saturates = true;       // 8 vs 16 gains are marginal.
  bool ModeE1NotStream = true; // Paper: 1-stream MODE E != stream mode.
  for (const std::string &Size : Sizes) {
    T.beginRow();
    T.add(fmt::bytes(megabytes(std::atof(Size.c_str()))));
    for (const char *N : {"0", "1", "2", "4", "8", "16"})
      T.add(Mean(Size, N), 1);
    Monotone &= Mean(Size, "1") >= Mean(Size, "2") &&
                Mean(Size, "2") >= Mean(Size, "4") &&
                Mean(Size, "4") >= Mean(Size, "8") &&
                Mean(Size, "8") >= Mean(Size, "16") * 0.999;
    TwoNearlyHalves &= Mean(Size, "2") < Mean(Size, "1") * 0.65;
    Saturates &= Mean(Size, "16") > Mean(Size, "8") * 0.93;
    ModeE1NotStream &= Mean(Size, "1") > Mean(Size, "0");
  }
  T.print(stdout);
  std::printf("\n");

  bench::shapeCheck(Monotone, "transfer time non-increasing in stream count");
  bench::shapeCheck(TwoNearlyHalves,
                    "2 streams cut time by >35% (unsaturated scaling)");
  bench::shapeCheck(Saturates,
                    "8 -> 16 streams gains <7% (bottleneck saturated)");
  bench::shapeCheck(ModeE1NotStream,
                    "MODE E with 1 stream is slightly slower than stream "
                    "mode (framing + negotiation)");
  return bench::exitCode();
}
