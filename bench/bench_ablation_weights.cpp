//===- bench/bench_ablation_weights.cpp ---------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: cost-model weight sensitivity and P^BW normalisation.
///
/// The paper fixes W = (0.8, 0.1, 0.1) "after several experimental
/// measurements" and lists determining the weights as future work.  This
/// bench (a) sweeps the bandwidth weight from 0 to 1 (CPU and I/O split
/// the remainder evenly) and reports the workload's mean transfer time and
/// the Kendall rank correlation between candidate scores and measured
/// fetch times of file-a; (b) contrasts the two readings of "highest
/// theoretical bandwidth" (client-access vs per-path), showing the literal
/// per-path reading can invert the ranking on heterogeneous links.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "grid/Experiment.h"
#include "replica/ReplicaSelector.h"
#include "support/Statistics.h"

#include <map>
#include <vector>

using namespace dgsim;
using namespace dgsim::units;

namespace {

double runWorkloadMeanTransfer(CostWeights W) {
  PaperTestbed T;
  T.publishFileA();
  ReplicaCatalog &Cat = T.grid().catalog();
  Cat.registerFile("event-set", megabytes(512));
  Cat.addReplica("event-set", T.hit(1));
  Cat.addReplica("event-set", T.lz(2));
  Cat.registerFile("survey-img", megabytes(768));
  Cat.addReplica("survey-img", T.alpha(3));
  Cat.addReplica("survey-img", T.lz(1));

  CostModelPolicy Policy(W);
  ReplicaSelector Sel(Cat, T.grid().info(), Policy);
  WorkloadConfig Cfg;
  Cfg.JobCount = 30;
  Cfg.MeanInterarrival = 45.0;
  Cfg.App.Streams = 8;
  Workload Load(T.grid(), Sel, {&T.alpha(1), &T.hit(3), &T.lz(4)}, Cfg);
  T.sim().runUntil(bench::WarmupSeconds);
  Load.start();
  T.sim().run();
  return Load.stats().TransferSeconds.mean();
}

/// Candidate scores for file-a -> alpha1 under the given weights and
/// normalisation, plus measured fetch times for ranking comparison.
struct RankData {
  std::vector<double> Scores;
  std::vector<double> Seconds;
};

RankData rankData(CostWeights W, BwNormalization Norm) {
  PaperTestbedOptions O;
  O.Info.Normalization = Norm;
  PaperTestbed T(O);
  T.publishFileA();
  T.sim().runUntil(bench::WarmupSeconds);
  CostModelPolicy Policy(W);
  ReplicaSelector Sel(T.grid().catalog(), T.grid().info(), Policy, W);
  RankData D;
  for (const CandidateReport &C :
       Sel.scoreAll(T.alpha(1).node(), PaperTestbed::FileA)) {
    D.Scores.push_back(C.Score);
    // Measure each candidate serially on a fresh testbed.
    PaperTestbedOptions MO;
    PaperTestbed M(MO);
    M.sim().runUntil(bench::WarmupSeconds);
    TransferSpec Spec;
    Spec.Source = M.grid().findHost(C.Candidate->name());
    Spec.Destination = &M.alpha(1);
    Spec.FileBytes = megabytes(1024);
    Spec.Protocol = TransferProtocol::GridFtpModeE;
    Spec.Streams = 8;
    double Seconds = 0.0;
    M.grid().transfers().submit(
        Spec, [&](const TransferResult &R) { Seconds = R.totalSeconds(); });
    M.sim().run();
    D.Seconds.push_back(Seconds);
  }
  return D;
}

} // namespace

int main() {
  bench::banner("Ablation: cost-model weights and P^BW normalisation",
                "paper future work: \"how to determine the system factors "
                "weight\"");

  Table Sweep;
  Sweep.setHeader({"W_bw", "W_cpu", "W_io", "mean transfer (s)",
                   "rank corr (tau)"});
  std::map<double, double> MeanBy;
  for (double Wb : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    CostWeights W;
    W.Bandwidth = Wb;
    W.Cpu = (1.0 - Wb) / 2.0;
    W.Io = (1.0 - Wb) / 2.0;
    double Mean = runWorkloadMeanTransfer(W);
    MeanBy[Wb] = Mean;
    RankData D = rankData(W, BwNormalization::ClientAccess);
    // Score should anti-correlate with transfer time: report -tau so a
    // perfect model scores +1.
    double Tau = -stats::kendallTau(D.Scores, D.Seconds);
    Sweep.beginRow();
    Sweep.add(W.Bandwidth, 2);
    Sweep.add(W.Cpu, 2);
    Sweep.add(W.Io, 2);
    Sweep.add(Mean, 1);
    Sweep.add(Tau, 2);
  }
  Sweep.print(stdout);
  std::printf("\n");

  // Normalisation comparison at the paper's weights.
  Table Norm;
  Norm.setHeader({"P_bw normalisation", "rank corr (tau)"});
  std::map<std::string, double> TauBy;
  for (auto [Name, N] :
       std::initializer_list<std::pair<const char *, BwNormalization>>{
           {"client-access", BwNormalization::ClientAccess},
           {"per-path", BwNormalization::PerPath}}) {
    RankData D = rankData(CostWeights(), N);
    TauBy[Name] = -stats::kendallTau(D.Scores, D.Seconds);
    Norm.beginRow();
    Norm.add(std::string(Name));
    Norm.add(TauBy[Name], 2);
  }
  Norm.print(stdout);
  std::printf("\n");

  bool BwHelps = MeanBy[0.8] < MeanBy[0.0];
  bool PaperNearBest = true;
  for (auto &[Wb, Mean] : MeanBy)
    PaperNearBest &= MeanBy[0.8] <= Mean * 1.10;
  bool ClientAccessRanksBetter =
      TauBy["client-access"] > TauBy["per-path"];
  bench::shapeCheck(BwHelps, "bandwidth-aware weights beat bandwidth-blind "
                             "weights on mean transfer time");
  bench::shapeCheck(PaperNearBest,
                    "the paper's 0.8/0.1/0.1 is within 10% of the best "
                    "sweep point");
  bench::shapeCheck(ClientAccessRanksBetter,
                    "client-access P^BW normalisation ranks replicas "
                    "better than the literal per-path reading");
  return BwHelps && PaperNearBest && ClientAccessRanksBetter ? 0 : 1;
}
