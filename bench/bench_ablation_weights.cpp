//===- bench/bench_ablation_weights.cpp ---------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: cost-model weight sensitivity and P^BW normalisation.
///
/// The paper fixes W = (0.8, 0.1, 0.1) "after several experimental
/// measurements" and lists determining the weights as future work.  This
/// bench (a) sweeps the bandwidth weight from 0 to 1 (CPU and I/O split
/// the remainder evenly) and reports the workload's mean transfer time and
/// the Kendall rank correlation between candidate scores and measured
/// fetch times of file-a; (b) contrasts the two readings of "highest
/// theoretical bandwidth" (client-access vs per-path), showing the literal
/// per-path reading can invert the ranking on heterogeneous links.
///
/// Runs on the ExperimentRunner as two scenarios: the weight sweep writes
/// BENCH_abl-weights.json, the normalisation comparison
/// BENCH_abl-weights-norm.json.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "exp/Options.h"
#include "grid/Experiment.h"
#include "replica/ReplicaSelector.h"
#include "support/Statistics.h"

#include <cstdlib>
#include <vector>

using namespace dgsim;
using namespace dgsim::units;

namespace {

double runWorkloadMeanTransfer(CostWeights W, uint64_t Seed) {
  PaperTestbedOptions O;
  O.Seed = Seed;
  PaperTestbed T(O);
  T.publishFileA();
  ReplicaCatalog &Cat = T.grid().catalog();
  Cat.registerFile("event-set", megabytes(512));
  Cat.addReplica("event-set", T.hit(1));
  Cat.addReplica("event-set", T.lz(2));
  Cat.registerFile("survey-img", megabytes(768));
  Cat.addReplica("survey-img", T.alpha(3));
  Cat.addReplica("survey-img", T.lz(1));

  CostModelPolicy Policy(W);
  ReplicaSelector Sel(Cat, T.grid().info(), Policy);
  WorkloadConfig Cfg;
  Cfg.JobCount = 30;
  Cfg.MeanInterarrival = 45.0;
  Cfg.App.Streams = 8;
  Workload Load(T.grid(), Sel, {&T.alpha(1), &T.hit(3), &T.lz(4)}, Cfg);
  T.sim().runUntil(bench::WarmupSeconds);
  Load.start();
  T.sim().run();
  return Load.stats().TransferSeconds.mean();
}

/// Candidate scores for file-a -> alpha1 under the given weights and
/// normalisation, plus measured fetch times for ranking comparison.
struct RankData {
  std::vector<double> Scores;
  std::vector<double> Seconds;
};

RankData rankData(CostWeights W, BwNormalization Norm, uint64_t Seed) {
  PaperTestbedOptions O;
  O.Seed = Seed;
  O.Info.Normalization = Norm;
  PaperTestbed T(O);
  T.publishFileA();
  T.sim().runUntil(bench::WarmupSeconds);
  CostModelPolicy Policy(W);
  ReplicaSelector Sel(T.grid().catalog(), T.grid().info(), Policy, W);
  RankData D;
  for (const CandidateReport &C :
       Sel.scoreAll(T.alpha(1).node(), PaperTestbed::FileA)) {
    D.Scores.push_back(C.Score);
    // Measure each candidate serially on a fresh testbed.
    PaperTestbedOptions MO;
    MO.Seed = Seed;
    PaperTestbed M(MO);
    M.sim().runUntil(bench::WarmupSeconds);
    TransferSpec Spec;
    Spec.Source = M.grid().findHost(C.Candidate->name());
    Spec.Destination = &M.alpha(1);
    Spec.FileBytes = megabytes(1024);
    Spec.Protocol = TransferProtocol::GridFtpModeE;
    Spec.Streams = 8;
    double Seconds = 0.0;
    M.grid().transfers().submit(
        Spec, [&](const TransferResult &R) { Seconds = R.totalSeconds(); });
    M.sim().run();
    D.Seconds.push_back(Seconds);
  }
  return D;
}

CostWeights weightsFor(double Wb) {
  CostWeights W;
  W.Bandwidth = Wb;
  W.Cpu = (1.0 - Wb) / 2.0;
  W.Io = (1.0 - Wb) / 2.0;
  return W;
}

} // namespace

int main(int argc, char **argv) {
  exp::BenchOptions Opt =
      exp::parseBenchOptions(argc, argv, "abl-weights", /*BaseSeed=*/2005);
  bench::banner("Ablation: cost-model weights and P^BW normalisation",
                "paper future work: \"how to determine the system factors "
                "weight\"");

  // Scenario 1: bandwidth-weight sweep.
  exp::Scenario Sw;
  Sw.Id = Opt.Id;
  Sw.Title = "Cost-model bandwidth-weight sweep";
  Sw.Axes = {{"w_bw", {"0.0", "0.2", "0.4", "0.6", "0.8", "1.0"}}};
  Sw.Seeds = Opt.seeds();
  Sw.Metrics = {"mean_transfer_s", "rank_tau"};
  Sw.Run = [](const exp::TrialPoint &P) {
    double Wb = std::atof(P.param("w_bw").c_str());
    CostWeights W = weightsFor(Wb);
    exp::TrialResult R;
    R.set("mean_transfer_s", runWorkloadMeanTransfer(W, P.Seed));
    RankData D = rankData(W, BwNormalization::ClientAccess, P.Seed);
    // Score should anti-correlate with transfer time: report -tau so a
    // perfect model scores +1.
    R.set("rank_tau", -stats::kendallTau(D.Scores, D.Seconds));
    R.SpecHash = PaperTestbed::spec({}).hash();
    return R;
  };
  std::vector<exp::TrialRecord> SwRecords = exp::runScenario(Sw, Opt);

  Table Sweep;
  Sweep.setHeader({"W_bw", "W_cpu", "W_io", "mean transfer (s)",
                   "rank corr (tau)"});
  for (const std::string &V : Sw.Axes[0].Values) {
    CostWeights W = weightsFor(std::atof(V.c_str()));
    Sweep.beginRow();
    Sweep.add(W.Bandwidth, 2);
    Sweep.add(W.Cpu, 2);
    Sweep.add(W.Io, 2);
    Sweep.add(exp::meanMetric(SwRecords, "w_bw", V, "mean_transfer_s"), 1);
    Sweep.add(exp::meanMetric(SwRecords, "w_bw", V, "rank_tau"), 2);
  }
  Sweep.print(stdout);
  std::printf("\n");

  // Scenario 2: normalisation comparison at the paper's weights.
  exp::BenchOptions NormOpt = Opt;
  NormOpt.Id = "abl-weights-norm";
  NormOpt.JsonPath.clear(); // Default path BENCH_abl-weights-norm.json.
  exp::Scenario Sn;
  Sn.Id = NormOpt.Id;
  Sn.Title = "P^BW normalisation comparison at paper weights";
  Sn.Axes = {{"norm", {"client-access", "per-path"}}};
  Sn.Seeds = Opt.seeds();
  Sn.Metrics = {"rank_tau"};
  Sn.Run = [](const exp::TrialPoint &P) {
    BwNormalization N = P.param("norm") == "per-path"
                            ? BwNormalization::PerPath
                            : BwNormalization::ClientAccess;
    RankData D = rankData(CostWeights(), N, P.Seed);
    exp::TrialResult R;
    R.set("rank_tau", -stats::kendallTau(D.Scores, D.Seconds));
    return R;
  };
  std::vector<exp::TrialRecord> SnRecords = exp::runScenario(Sn, NormOpt);

  Table Norm;
  Norm.setHeader({"P_bw normalisation", "rank corr (tau)"});
  for (const std::string &V : Sn.Axes[0].Values) {
    Norm.beginRow();
    Norm.add(V);
    Norm.add(exp::meanMetric(SnRecords, "norm", V, "rank_tau"), 2);
  }
  Norm.print(stdout);
  std::printf("\n");

  auto SweepMean = [&](const char *V) {
    return exp::meanMetric(SwRecords, "w_bw", V, "mean_transfer_s");
  };
  bool BwHelps = SweepMean("0.8") < SweepMean("0.0");
  bool PaperNearBest = true;
  for (const std::string &V : Sw.Axes[0].Values)
    PaperNearBest &= SweepMean("0.8") <= SweepMean(V.c_str()) * 1.10;
  bool ClientAccessRanksBetter =
      exp::meanMetric(SnRecords, "norm", "client-access", "rank_tau") >
      exp::meanMetric(SnRecords, "norm", "per-path", "rank_tau");
  bench::shapeCheck(BwHelps, "bandwidth-aware weights beat bandwidth-blind "
                             "weights on mean transfer time");
  bench::shapeCheck(PaperNearBest,
                    "the paper's 0.8/0.1/0.1 is within 10% of the best "
                    "sweep point");
  bench::shapeCheck(ClientAccessRanksBetter,
                    "client-access P^BW normalisation ranks replicas "
                    "better than the literal per-path reading");
  return bench::exitCode();
}
