//===- bench/bench_fig3_ftp_vs_gridftp.cpp ----------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Fig 3: FTP versus GridFTP file transfer time for
/// 256/512/1024/2048 MB files from the THU site to the HIT site (the paper
/// names the endpoints alpha01 and gridhit3; our testbed calls them alpha1
/// and hit3).  Both protocols run in single-connection stream mode, so the
/// curves should nearly coincide — the paper's observation that "even [if]
/// file size is 2 gigabytes, the data transfer time is similar" — with
/// GridFTP paying a small constant GSI startup cost.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace dgsim;
using namespace dgsim::units;

int main() {
  bench::banner("Fig 3: FTP versus GridFTP",
                "file transfer time, THU alpha1 -> HIT hit3, stream mode");

  PaperTestbedOptions Options;
  Options.DynamicLoad = false; // The paper measured on a quiet testbed.
  Options.CrossTraffic = false;

  const double SizesMB[] = {256, 512, 1024, 2048};

  Table T;
  T.setHeader({"file size", "FTP (s)", "GridFTP (s)", "GridFTP/FTP",
               "FTP Mb/s", "GridFTP Mb/s"});
  bool SimilarEverywhere = true;
  bool MonotoneFtp = true;
  double PrevFtp = 0.0;
  for (double MB : SizesMB) {
    TransferResult Ftp = bench::runSingleTransfer(
        Options, "alpha1", "hit3", megabytes(MB), TransferProtocol::Ftp, 1);
    TransferResult Grid =
        bench::runSingleTransfer(Options, "alpha1", "hit3", megabytes(MB),
                                 TransferProtocol::GridFtpStream, 1);
    T.beginRow();
    T.add(fmt::bytes(megabytes(MB)));
    T.add(Ftp.totalSeconds(), 1);
    T.add(Grid.totalSeconds(), 1);
    T.add(Grid.totalSeconds() / Ftp.totalSeconds(), 3);
    T.add(Ftp.meanThroughput() / 1e6, 1);
    T.add(Grid.meanThroughput() / 1e6, 1);

    SimilarEverywhere &=
        Grid.totalSeconds() < Ftp.totalSeconds() * 1.15 &&
        Grid.totalSeconds() > Ftp.totalSeconds() * 0.95;
    MonotoneFtp &= Ftp.totalSeconds() > PrevFtp;
    PrevFtp = Ftp.totalSeconds();
  }
  T.print(stdout);
  std::printf("\n");
  bench::shapeCheck(SimilarEverywhere,
                    "GridFTP within [0.95x, 1.15x] of FTP at every size "
                    "(paper: \"the data transfer time is similar\")");
  bench::shapeCheck(MonotoneFtp, "transfer time grows with file size");
  return SimilarEverywhere && MonotoneFtp ? 0 : 1;
}
