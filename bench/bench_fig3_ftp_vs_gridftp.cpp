//===- bench/bench_fig3_ftp_vs_gridftp.cpp ----------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Fig 3: FTP versus GridFTP file transfer time for
/// 256/512/1024/2048 MB files from the THU site to the HIT site (the paper
/// names the endpoints alpha01 and gridhit3; our testbed calls them alpha1
/// and hit3).  Both protocols run in single-connection stream mode, so the
/// curves should nearly coincide — the paper's observation that "even [if]
/// file size is 2 gigabytes, the data transfer time is similar" — with
/// GridFTP paying a small constant GSI startup cost.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "exp/Options.h"

#include <cstdlib>

using namespace dgsim;
using namespace dgsim::units;

int main(int argc, char **argv) {
  exp::BenchOptions Opt =
      exp::parseBenchOptions(argc, argv, "fig3", /*BaseSeed=*/2005);
  bench::banner("Fig 3: FTP versus GridFTP",
                "file transfer time, THU alpha1 -> HIT hit3, stream mode");

  exp::Scenario S;
  S.Id = Opt.Id;
  S.Title = "Fig 3: FTP vs GridFTP stream-mode transfer time";
  std::vector<std::string> Sizes = {"256", "512", "1024", "2048"};
  if (Opt.Quick)
    Sizes = {"256", "512"};
  S.Axes = {{"size_mb", Sizes}, {"protocol", {"ftp", "gridftp-stream"}}};
  S.Seeds = Opt.seeds();
  S.Metrics = {"transfer_s", "throughput_mbps"};
  S.Run = [](const exp::TrialPoint &P) {
    PaperTestbedOptions Options;
    Options.Seed = P.Seed;
    Options.DynamicLoad = false; // The paper measured on a quiet testbed.
    Options.CrossTraffic = false;
    TransferProtocol Protocol = P.param("protocol") == "ftp"
                                    ? TransferProtocol::Ftp
                                    : TransferProtocol::GridFtpStream;
    TransferResult R = bench::runSingleTransfer(
        Options, "alpha1", "hit3",
        megabytes(std::atof(P.param("size_mb").c_str())), Protocol, 1);
    exp::TrialResult Result;
    Result.set("transfer_s", R.totalSeconds());
    Result.set("throughput_mbps", R.meanThroughput() / 1e6);
    Result.SpecHash = PaperTestbed::spec(Options).hash();
    return Result;
  };
  std::vector<exp::TrialRecord> Records = exp::runScenario(S, Opt);

  auto Mean = [&](const std::string &Size, const char *Protocol,
                  const char *Metric) {
    double Sum = 0.0;
    size_t Count = 0;
    for (const exp::TrialRecord &R : Records)
      if (R.Point.param("size_mb") == Size &&
          R.Point.param("protocol") == Protocol) {
        Sum += R.Result.get(Metric);
        ++Count;
      }
    return Sum / static_cast<double>(Count);
  };

  Table T;
  T.setHeader({"file size", "FTP (s)", "GridFTP (s)", "GridFTP/FTP",
               "FTP Mb/s", "GridFTP Mb/s"});
  bool SimilarEverywhere = true;
  bool MonotoneFtp = true;
  double PrevFtp = 0.0;
  for (const std::string &Size : Sizes) {
    double Ftp = Mean(Size, "ftp", "transfer_s");
    double Grid = Mean(Size, "gridftp-stream", "transfer_s");
    T.beginRow();
    T.add(fmt::bytes(megabytes(std::atof(Size.c_str()))));
    T.add(Ftp, 1);
    T.add(Grid, 1);
    T.add(Grid / Ftp, 3);
    T.add(Mean(Size, "ftp", "throughput_mbps"), 1);
    T.add(Mean(Size, "gridftp-stream", "throughput_mbps"), 1);

    SimilarEverywhere &= Grid < Ftp * 1.15 && Grid > Ftp * 0.95;
    MonotoneFtp &= Ftp > PrevFtp;
    PrevFtp = Ftp;
  }
  T.print(stdout);
  std::printf("\n");
  bench::shapeCheck(SimilarEverywhere,
                    "GridFTP within [0.95x, 1.15x] of FTP at every size "
                    "(paper: \"the data transfer time is similar\")");
  bench::shapeCheck(MonotoneFtp, "transfer time grows with file size");
  return bench::exitCode();
}
