//===- bench/bench_fig5_cost_program.cpp --------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Fig 5: the replica-selection cost program.
///
/// The paper's Java GUI displayed (a) per-site costs computed from the
/// three system factors relative to alpha1, refreshed continuously, and
/// (b) averages over an adjustable time scale, plus a sorted cost list.
/// This terminal version samples the cost of every file-a candidate every
/// 30 simulated seconds for 10 minutes, prints the trace, the averages at
/// three time scales (the scroll bar of Fig 5b), and the sorted list (the
/// "Cost" button).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "replica/ReplicaSelector.h"
#include "support/TimeSeries.h"

#include <map>
#include <vector>

using namespace dgsim;
using namespace dgsim::units;

int main() {
  bench::banner("Fig 5: replica selection cost program",
                "per-candidate cost trace to alpha1, time-scale averages, "
                "sorted cost list");

  PaperTestbed T; // Dynamic load + cross traffic: the costs move.
  T.publishFileA();
  CostModelPolicy Policy;
  ReplicaSelector Selector(T.grid().catalog(), T.grid().info(), Policy);

  const std::vector<std::string> Candidates = {"alpha4", "hit0", "lz02"};
  std::map<std::string, TimeSeries> Trace;

  // Sample every 30 s for 10 minutes (the GUI's refresh loop).
  constexpr SimTime SamplePeriod = 30.0;
  constexpr SimTime Horizon = 600.0;
  T.sim().schedulePeriodic(SamplePeriod, [&] {
    auto Reports = Selector.scoreAll(T.alpha(1).node(),
                                     PaperTestbed::FileA);
    for (const CandidateReport &C : Reports)
      Trace[C.Candidate->name()].add(T.sim().now(), C.Score);
  });
  T.sim().runUntil(Horizon);

  Table Rows;
  Rows.setHeader({"t (s)", "cost alpha4", "cost hit0", "cost lz02"});
  size_t Samples = Trace["alpha4"].size();
  for (size_t I = 0; I < Samples; ++I) {
    Rows.beginRow();
    Rows.add(Trace["alpha4"].at(I).Time, 0);
    for (const std::string &Name : Candidates)
      Rows.add(Trace[Name].at(I).Value, 3);
  }
  Rows.print(stdout);
  std::printf("\n");

  // Fig 5(b): averages over the selectable time scale.
  Table Avg;
  Avg.setHeader({"time scale", "alpha4", "hit0", "lz02"});
  for (SimTime Scale : {60.0, 300.0, 600.0}) {
    Avg.beginRow();
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "last %.0f s", Scale);
    Avg.add(std::string(Buf));
    for (const std::string &Name : Candidates)
      Avg.add(Trace[Name].meanSince(Horizon - Scale), 3);
  }
  Avg.print(stdout);
  std::printf("\n");

  // The "Cost" button: sorted list, best replica first.
  std::vector<std::pair<double, std::string>> Sorted;
  for (const std::string &Name : Candidates)
    Sorted.push_back({Trace[Name].meanSince(0.0), Name});
  std::sort(Sorted.rbegin(), Sorted.rend());
  std::printf("sorted replica list (best first):\n");
  for (auto &[Cost, Name] : Sorted)
    std::printf("  %-8s %.3f\n", Name.c_str(), Cost);
  std::printf("\n");

  bool AllSampled = true;
  for (const std::string &Name : Candidates)
    AllSampled &= Trace[Name].size() == Samples && Samples >= 19;
  bool CostsMove = false; // Dynamic grid: at least one series varies.
  for (const std::string &Name : Candidates) {
    auto V = Trace[Name].values();
    for (double X : V)
      CostsMove |= X != V.front();
  }
  bool OrderStable = Sorted[0].second == "alpha4" &&
                     Sorted[2].second == "lz02";
  bench::shapeCheck(AllSampled, "every candidate sampled every 30 s");
  bench::shapeCheck(CostsMove,
                    "costs vary over time (dynamic network situations)");
  bench::shapeCheck(OrderStable,
                    "time-averaged sorted list: alpha4 best, lz02 worst");
  return bench::exitCode();
}
