//===- bench/bench_micro_kernel.cpp -------------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the simulator's hot kernels: event
/// queue throughput, the max-min fair-share solver, routing, and the NWS
/// forecaster battery.  These bound how large a grid the ablation benches
/// can simulate in reasonable wall-clock time.
///
//===----------------------------------------------------------------------===//

#include "monitor/Forecaster.h"
#include "net/FairShare.h"
#include "net/Routing.h"
#include "net/Topology.h"
#include "sim/Simulator.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace dgsim;

static void BM_EventScheduleAndRun(benchmark::State &State) {
  const size_t N = State.range(0);
  for (auto _ : State) {
    Simulator Sim;
    RandomEngine Rng(1);
    size_t Fired = 0;
    for (size_t I = 0; I < N; ++I)
      Sim.schedule(Rng.uniform(0, 1000), [&Fired] { ++Fired; });
    Sim.run();
    benchmark::DoNotOptimize(Fired);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_EventScheduleAndRun)->Arg(1000)->Arg(10000)->Arg(100000);

static void BM_FairShareSolve(benchmark::State &State) {
  const size_t Flows = State.range(0);
  const size_t Resources = 64;
  RandomEngine Rng(2);
  std::vector<double> Cap(Resources);
  for (auto &C : Cap)
    C = Rng.uniform(10, 1000);
  std::vector<FairShareDemand> Demands(Flows);
  for (auto &D : Demands) {
    size_t Hops = 1 + Rng.uniformInt(4);
    for (size_t I = 0; I < Hops; ++I)
      D.Resources.push_back(Rng.uniformInt(Resources));
    D.Cap = Rng.uniform(1, 500);
    D.Weight = 1.0 + Rng.uniformInt(16);
  }
  for (auto _ : State) {
    auto R = solveMaxMinFairShare(Cap, Demands);
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(State.iterations() * Flows);
}
BENCHMARK(BM_FairShareSolve)->Arg(16)->Arg(64)->Arg(256);

static void BM_RoutingColdPaths(benchmark::State &State) {
  const size_t Sites = State.range(0);
  Topology Topo;
  NodeId Core = Topo.addNode("core");
  std::vector<NodeId> Leaves;
  RandomEngine Rng(3);
  for (size_t I = 0; I < Sites; ++I) {
    NodeId N = Topo.addNode("n" + std::to_string(I));
    Topo.addLink(N, Core, 1e9, Rng.uniform(0.001, 0.01));
    Leaves.push_back(N);
  }
  for (auto _ : State) {
    Routing Router(Topo); // Cold cache each iteration.
    double Acc = 0.0;
    for (size_t I = 1; I < Leaves.size(); ++I)
      Acc += Router.path(Leaves[0], Leaves[I])->Rtt;
    benchmark::DoNotOptimize(Acc);
  }
  State.SetItemsProcessed(State.iterations() * (Sites - 1));
}
BENCHMARK(BM_RoutingColdPaths)->Arg(16)->Arg(64)->Arg(256);

static void BM_NwsForecasterObserve(benchmark::State &State) {
  RandomEngine Rng(4);
  std::vector<double> Series(4096);
  for (auto &X : Series)
    X = Rng.uniform(0, 100);
  for (auto _ : State) {
    NwsForecaster F;
    for (double X : Series) {
      F.observe(X);
      benchmark::DoNotOptimize(F.predict());
    }
  }
  State.SetItemsProcessed(State.iterations() * Series.size());
}
BENCHMARK(BM_NwsForecasterObserve);

BENCHMARK_MAIN();
