//===- bench/bench_micro_kernel.cpp -------------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the simulator's hot kernels: event
/// queue throughput, the max-min fair-share solver, routing, and the NWS
/// forecaster battery.  These bound how large a grid the ablation benches
/// can simulate in reasonable wall-clock time.
///
//===----------------------------------------------------------------------===//

#include "exp/ExperimentRunner.h"
#include "exp/MetricSink.h"
#include "exp/Scenario.h"
#include "monitor/Forecaster.h"
#include "net/FairShare.h"
#include "net/FlowNetwork.h"
#include "net/Routing.h"
#include "net/Topology.h"
#include "sim/Simulator.h"
#include "support/Random.h"
#include "support/StringInterner.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

using namespace dgsim;

static void BM_EventScheduleAndRun(benchmark::State &State) {
  const size_t N = State.range(0);
  for (auto _ : State) {
    Simulator Sim;
    RandomEngine Rng(1);
    size_t Fired = 0;
    for (size_t I = 0; I < N; ++I)
      Sim.schedule(Rng.uniform(0, 1000), [&Fired] { ++Fired; });
    Sim.run();
    benchmark::DoNotOptimize(Fired);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_EventScheduleAndRun)->Arg(1000)->Arg(10000)->Arg(100000);

static void BM_FairShareSolve(benchmark::State &State) {
  const size_t Flows = State.range(0);
  const size_t Resources = 64;
  RandomEngine Rng(2);
  std::vector<double> Cap(Resources);
  for (auto &C : Cap)
    C = Rng.uniform(10, 1000);
  std::vector<FairShareDemand> Demands(Flows);
  for (auto &D : Demands) {
    size_t Hops = 1 + Rng.uniformInt(4);
    for (size_t I = 0; I < Hops; ++I)
      D.Resources.push_back(Rng.uniformInt(Resources));
    D.Cap = Rng.uniform(1, 500);
    D.Weight = 1.0 + Rng.uniformInt(16);
  }
  for (auto _ : State) {
    auto R = solveMaxMinFairShare(Cap, Demands);
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(State.iterations() * Flows);
}
BENCHMARK(BM_FairShareSolve)->Arg(16)->Arg(64)->Arg(256);

static void BM_RoutingColdPaths(benchmark::State &State) {
  const size_t Sites = State.range(0);
  Topology Topo;
  NodeId Core = Topo.addNode("core");
  std::vector<NodeId> Leaves;
  RandomEngine Rng(3);
  for (size_t I = 0; I < Sites; ++I) {
    NodeId N = Topo.addNode("n" + std::to_string(I));
    Topo.addLink(N, Core, 1e9, Rng.uniform(0.001, 0.01));
    Leaves.push_back(N);
  }
  for (auto _ : State) {
    Routing Router(Topo); // Cold cache each iteration.
    double Acc = 0.0;
    for (size_t I = 1; I < Leaves.size(); ++I)
      Acc += Router.pathRef(Leaves[0], Leaves[I])->Rtt;
    benchmark::DoNotOptimize(Acc);
  }
  State.SetItemsProcessed(State.iterations() * (Sites - 1));
}
BENCHMARK(BM_RoutingColdPaths)->Arg(16)->Arg(64)->Arg(256);

namespace {

/// Flow-churn harness: \p Pairs isolated source->sink pairs (one dedicated
/// link each) or, when \p SharedCore is set, a star where every pair routes
/// through one core node, so all flows meet on the access links.  \p Flows
/// long-lived transfers are spread round-robin across the pairs; churn then
/// replaces one flow per step.  This is the event pattern of a large grid
/// ablation: arrivals and departures against a big standing flow set.
struct ChurnFixture {
  Simulator Sim{11};
  Topology Topo;
  TcpModel Tcp;
  std::unique_ptr<Routing> Router;
  std::unique_ptr<FlowNetwork> Net;
  std::vector<NodeId> Src, Dst;
  std::vector<FlowId> Ids;
  RandomEngine Rng{17};
  size_t Pairs;

  ChurnFixture(size_t Pairs, size_t Flows, bool SharedCore) : Pairs(Pairs) {
    NodeId Core = SharedCore ? Topo.addNode("core") : InvalidNodeId;
    for (size_t I = 0; I < Pairs; ++I) {
      Src.push_back(Topo.addNode("s" + std::to_string(I)));
      Dst.push_back(Topo.addNode("d" + std::to_string(I)));
      if (SharedCore) {
        Topo.addLink(Src[I], Core, 1e9, 0.002, 1e-4);
        Topo.addLink(Core, Dst[I], 1e9, 0.002, 1e-4);
      } else {
        Topo.addLink(Src[I], Dst[I], 1e9, 0.005, 1e-4);
      }
    }
    Router = std::make_unique<Routing>(Topo);
    Net = std::make_unique<FlowNetwork>(Sim, Topo, *Router, Tcp);
    for (size_t I = 0; I < Flows; ++I)
      Ids.push_back(startOne(I % Pairs));
  }

  FlowId startOne(size_t Pair) {
    FlowOptions Opt;
    Opt.Streams = 1 + static_cast<unsigned>(Rng.uniformInt(4));
    Opt.EndpointCap = Rng.uniform(1e6, 5e7);
    Opt.Background = true; // Pure churn; nothing keeps run() alive.
    // Volumes far beyond what the bench moves: no completions interfere.
    return Net->startFlow(Src[Pair], Dst[Pair], 1e15, Opt, nullptr);
  }
};

} // namespace

/// One churn step = cancel one standing flow + start a replacement: two
/// rebalance events against range(0) concurrent flows on disjoint pairs.
static void BM_FlowChurn(benchmark::State &State) {
  ChurnFixture F(128, State.range(0), /*SharedCore=*/false);
  size_t Cursor = 0;
  for (auto _ : State) {
    F.Net->cancelFlow(F.Ids[Cursor]);
    F.Ids[Cursor] = F.startOne(Cursor % F.Pairs);
    Cursor = (Cursor + 1) % F.Ids.size();
  }
  State.SetItemsProcessed(State.iterations() * 2); // Two events per step.
}
BENCHMARK(BM_FlowChurn)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

/// Adversarial variant: every flow crosses the shared star, so each event's
/// affected component is large and the win must come from the solver itself.
static void BM_FlowChurnSharedCore(benchmark::State &State) {
  ChurnFixture F(64, State.range(0), /*SharedCore=*/true);
  size_t Cursor = 0;
  for (auto _ : State) {
    F.Net->cancelFlow(F.Ids[Cursor]);
    F.Ids[Cursor] = F.startOne(Cursor % F.Pairs);
    Cursor = (Cursor + 1) % F.Ids.size();
  }
  State.SetItemsProcessed(State.iterations() * 2);
}
BENCHMARK(BM_FlowChurnSharedCore)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

/// A single cap-change event against a standing flow set: the cost of one
/// rebalance when only one flow's constraint moved.
static void BM_IncrementalRebalance(benchmark::State &State) {
  ChurnFixture F(128, State.range(0), /*SharedCore=*/false);
  FlowId Target = F.Ids[0];
  const double Caps[2] = {2e7, 3e7};
  size_t K = 0;
  for (auto _ : State)
    F.Net->setEndpointCap(Target, Caps[K ^= 1]);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_IncrementalRebalance)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

static void BM_NwsForecasterObserve(benchmark::State &State) {
  RandomEngine Rng(4);
  std::vector<double> Series(4096);
  for (auto &X : Series)
    X = Rng.uniform(0, 100);
  for (auto _ : State) {
    NwsForecaster F;
    for (double X : Series) {
      F.observe(X);
      benchmark::DoNotOptimize(F.predict());
    }
  }
  State.SetItemsProcessed(State.iterations() * Series.size());
}
BENCHMARK(BM_NwsForecasterObserve);

//===----------------------------------------------------------------------===//
// Event-kernel microbenches: the indexed heap, periodic re-arming, and the
// interned string maps these kernels feed.
//===----------------------------------------------------------------------===//

/// Windowed cancel+reschedule churn: a standing ring of pending events where
/// every step cancels one and schedules a replacement.  This is the pattern
/// timeouts and watchdogs produce, and it exercises O(log n) in-place heap
/// removal — under the old lazy-deletion scheme each cancel left a tombstone
/// the pop loop had to skip later.
static void BM_EventChurn(benchmark::State &State) {
  const size_t Window = State.range(0);
  Simulator Sim;
  RandomEngine Rng(5);
  std::vector<EventId> Ring(Window);
  // Far-future events: nothing fires, the heap stays at window size.
  for (EventId &Id : Ring)
    Id = Sim.schedule(1e6 + Rng.uniform(0, 1000), [] {});
  size_t Cursor = 0;
  for (auto _ : State) {
    Sim.cancel(Ring[Cursor]);
    Ring[Cursor] = Sim.schedule(1e6 + Rng.uniform(0, 1000), [] {});
    Cursor = (Cursor + 1) % Window;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_EventChurn)->Arg(1000)->Arg(10000)->Arg(100000);

/// K standing periodics with staggered phases; each iteration advances the
/// clock one period, so K ticks re-arm without re-allocating their closures.
static void BM_PeriodicTick(benchmark::State &State) {
  const size_t K = State.range(0);
  Simulator Sim;
  uint64_t Ticks = 0;
  for (size_t I = 0; I < K; ++I)
    Sim.schedulePeriodic(1.0, [&Ticks] { ++Ticks; },
                         double(I + 1) / double(K));
  for (auto _ : State)
    Sim.runUntil(Sim.now() + 1.0);
  benchmark::DoNotOptimize(Ticks);
  State.SetItemsProcessed(State.iterations() * K);
}
BENCHMARK(BM_PeriodicTick)->Arg(100)->Arg(1000);

namespace {

/// Shared key set for the lookup benches: grid-flavoured logical file
/// names with common prefixes, the worst case for string compares.
std::vector<std::string> lookupKeys(size_t N) {
  std::vector<std::string> Keys;
  Keys.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Keys.push_back("site" + std::to_string(I % 37) + "/dataset/file" +
                   std::to_string(I));
  return Keys;
}

} // namespace

/// Hot-path name resolution through the StringInterner (one hash of the
/// name, no tree walk, no per-node compares).
static void BM_InternedLookup(benchmark::State &State) {
  const size_t N = State.range(0);
  std::vector<std::string> Keys = lookupKeys(N);
  StringInterner In;
  for (const std::string &K : Keys)
    In.intern(K);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(In.find(Keys[I]));
    I = (I + 1) % N;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_InternedLookup)->Arg(1000)->Arg(100000);

/// The ordered-map lookup the interner replaced, kept as the comparison
/// baseline (O(log n) string compares per query).
static void BM_OrderedMapLookup(benchmark::State &State) {
  const size_t N = State.range(0);
  std::vector<std::string> Keys = lookupKeys(N);
  std::map<std::string, uint32_t> M;
  for (size_t I = 0; I < N; ++I)
    M.emplace(Keys[I], static_cast<uint32_t>(I));
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(M.find(Keys[I]));
    I = (I + 1) % N;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_OrderedMapLookup)->Arg(1000)->Arg(100000);

//===----------------------------------------------------------------------===//
// --kernel-json=PATH: fixed-size kernel workloads through the experiment
// runner, so the sweep benches and this microbench emit the same BENCH_*.json
// schema and commits can be compared with the same tooling.
//===----------------------------------------------------------------------===//

namespace {

dgsim::exp::TrialResult runKernelTrial(const dgsim::exp::TrialPoint &P) {
  namespace exp = dgsim::exp;
  const std::string &Workload = P.param("workload");
  exp::TrialResult R;
  auto T0 = std::chrono::steady_clock::now();
  double Ops = 0.0;
  uint64_t Events = 0;
  if (Workload == "event-churn") {
    constexpr size_t Window = 10000, Steps = 200000;
    Simulator Sim(P.Seed);
    RandomEngine Rng(P.Seed);
    std::vector<EventId> Ring(Window);
    for (EventId &Id : Ring)
      Id = Sim.schedule(1e6 + Rng.uniform(0, 1000), [] {});
    size_t Cursor = 0;
    for (size_t I = 0; I < Steps; ++I) {
      Sim.cancel(Ring[Cursor]);
      Ring[Cursor] = Sim.schedule(1e6 + Rng.uniform(0, 1000), [] {});
      Cursor = (Cursor + 1) % Window;
    }
    Ops = double(Steps);
    Events = Sim.eventsExecuted();
  } else if (Workload == "periodic-tick") {
    constexpr size_t K = 1000;
    constexpr double Windows = 100.0;
    Simulator Sim(P.Seed);
    uint64_t Ticks = 0;
    for (size_t I = 0; I < K; ++I)
      Sim.schedulePeriodic(1.0, [&Ticks] { ++Ticks; },
                           double(I + 1) / double(K));
    Sim.runUntil(Windows);
    Ops = double(Ticks);
    Events = Sim.eventsExecuted();
  } else { // interned-lookup
    constexpr size_t N = 20000, Lookups = 2000000;
    std::vector<std::string> Keys = lookupKeys(N);
    StringInterner In;
    for (const std::string &K : Keys)
      In.intern(K);
    uint64_t Acc = 0;
    for (size_t I = 0; I < Lookups; ++I)
      Acc += In.find(Keys[I % N]);
    benchmark::DoNotOptimize(Acc);
    Ops = double(Lookups);
  }
  double Wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  R.set("ops_per_sec", Wall > 0.0 ? Ops / Wall : 0.0);
  R.set("events_per_sec", Wall > 0.0 ? double(Events) / Wall : 0.0);
  R.set("wall_seconds", Wall);
  return R;
}

int writeKernelReport(const std::string &Path) {
  namespace exp = dgsim::exp;
  exp::Scenario S;
  S.Id = "kernel";
  S.Title = "Event-kernel microbench workloads";
  S.Axes = {{"workload", {"event-churn", "periodic-tick", "interned-lookup"}}};
  S.Seeds = {1};
  S.Metrics = {"ops_per_sec", "events_per_sec", "wall_seconds"};
  S.Run = runKernelTrial;
  exp::JsonSink Sink(Path);
  exp::RunnerOptions Options;
  Options.Sinks.push_back(&Sink);
  exp::ExperimentRunner Runner;
  Runner.run(S, Options);
  std::printf("kernel report -> %s\n", Path.c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  // google-benchmark rejects flags it does not know, so the sink flag is
  // stripped before Initialize sees the argument vector.
  std::string KernelJson;
  std::vector<char *> Args;
  Args.push_back(argv[0]);
  for (int I = 1; I < argc; ++I) {
    std::string_view Arg = argv[I];
    constexpr std::string_view Prefix = "--kernel-json=";
    if (Arg.substr(0, std::min(Arg.size(), Prefix.size())) == Prefix) {
      KernelJson = std::string(Arg.substr(Prefix.size()));
      continue;
    }
    Args.push_back(argv[I]);
  }
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!KernelJson.empty())
    return writeKernelReport(KernelJson);
  return 0;
}
