//===- bench/bench_scale.cpp ---------------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiered-grid scale-out: 1k+ sites, a million open-loop transfers, one
/// core.
///
/// The paper's last future-work item asks for "a dynamic and larger
/// number of sites environment"; this bench builds one the MONARC way — a
/// tier-0 core, regional tier-1 backbones, campus tier-2 sites with
/// heterogeneous access links — from a declarative HierarchySpec, then
/// drives an open-loop Poisson fetch stream through the full replica
/// stack (NWS monitoring, cost-model selection, GridFTP transfers) at a
/// scale where the O(sites)/O(flows) walls would dominate without the
/// scale-mode machinery: batched phase-staggered sensors, TTL-evicted
/// path monitors, the bounded LCA routing cache, batched endpoint-cap
/// refresh, and two-choice replica sampling (at thousands of selections
/// per forecast period, plain arg-max herds onto stale winners).
///
/// Reports events/s, transfers/s and peak RSS alongside the usual shape
/// checks; an RSS probe at the workload midpoint checks that memory is
/// flat after warm-up (sublinear in transfer count).
///
/// Default: 1024 sites, ~1M transfers, one seed.  --quick: 64 sites,
/// ~10k transfers (the CI smoke configuration).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "exp/Options.h"
#include "grid/DataGrid.h"
#include "grid/Hierarchy.h"
#include "replica/ReplicaManager.h"
#include "replica/ReplicaSelector.h"
#include "support/Resource.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>

using namespace dgsim;
using namespace dgsim::units;

namespace {

/// Host-side RSS probes, one per trial (midpoint and end of the
/// workload).  Never feeds metrics or the JSON document — purely for the
/// flatness shape check, which only runs single-job (concurrent trials
/// share the process RSS, so per-trial probes would be meaningless).
struct RssProbe {
  uint64_t MidBytes = 0;
  uint64_t EndBytes = 0;
};
std::mutex RssMutex;
std::vector<RssProbe> RssProbes;

/// Builds the tiered grid for \p Sites sites and runs the open-loop
/// stream of roughly \p Transfers fetches through it, with \p Threads
/// intra-run worker threads on the simulator's parallel executor
/// (results are bit-identical for any value).
exp::TrialResult runTier(size_t Sites, uint64_t Transfers, uint64_t Seed,
                         unsigned Threads) {
  GridSpec Spec;
  Spec.Seed = Seed;
  // Scale-mode monitoring: shared batch ticks instead of one heap event
  // per sensor, phase-staggered so samples spread over the period, and
  // idle path monitors evicted instead of accumulating one pair forever.
  Spec.Info.BandwidthPeriod = 30.0;
  Spec.Info.HostPeriod = 15.0;
  Spec.Info.BatchSensors = true;
  Spec.Info.BatchHostLoads = true;
  Spec.Info.StaggerGroups = Sites >= 512 ? 64 : 16;
  // Scaled to the run: the quick matrix simulates ~40 s, so a 90 s TTL
  // would never evict (and RSS would grow for the whole run).
  Spec.Info.PathSensorTtl = Sites >= 512 ? 90.0 : 20.0;

  HierarchySpec H;
  H.Seed = Seed * 9176 + Sites;
  H.Regions = unsigned(Sites) / 32 < 2 ? 2 : unsigned(Sites) / 32;
  H.SitesPerRegion = unsigned(Sites) / H.Regions;
  H.HostsPerSite = 1;
  H.RootLink = LinkClassSpec{40e9, 0.008, 0.0, 1.0};
  // Heterogeneous but uniformly *stable* access: clients are drawn
  // uniformly, so every class must carry its share of the offered load
  // with slack — a class slower than per-client demand would backlog
  // without bound (open loop) and RSS would grow with the backlog.
  H.AccessClasses = {
      {10e9, 0.002, 0.0, 0.25},
      {1e9, 0.005, 0.0, 0.75},
  };
  // Storage-server class disks: the 2005 single-IDE default (~320 Mb/s
  // writes) sits *below* per-client ingest at these rates, and an
  // open-loop stream into an overloaded disk backlogs without bound.
  H.DiskReadRate = 4e9;
  H.DiskWriteRate = 3.2e9;
  H.FileCount = Sites >= 512 ? 256 : 64;
  H.FileSizeMin = megabytes(1);
  H.FileSizeMax = megabytes(4);
  // Replication degree is a stability knob, not a flavour knob: under
  // Zipf popularity the hottest file concentrates ~9% of the offered
  // load on its holders, and with too few replicas their access links
  // run past saturation — the open-loop backlog then grows without
  // bound.  Eight holders keep the hottest file's holders below ~60%
  // link load (the paper's own case for replicating popular files).
  H.ReplicasPerFile = Sites >= 512 ? 8 : 4;
  HierarchyLayout Layout;
  std::vector<std::string> Problems = appendHierarchy(Spec, H, &Layout);
  assert(Problems.empty() && "hierarchy spec must be well-formed");
  (void)Problems;

  WorkloadSpec Load;
  Load.Name = "scale-load";
  Load.Start = 0.0;
  Load.ArrivalsPerSecond = Sites >= 512 ? 2500.0 : 250.0;
  Load.Duration = double(Transfers) / Load.ArrivalsPerSecond;
  // A strided subset of hosts fetches: plenty of distinct (client,
  // holder) monitor pairs without every host pair existing at once, and
  // enough clients that the slowest access class stays under ~40% load.
  for (size_t I = 0; I < Layout.Hosts.size(); I += (Sites >= 512 ? 8 : 4))
    Load.Clients.push_back(Layout.Hosts[I]);
  Load.Lfns = Layout.Lfns;
  Load.ZipfExponent = 0.8;
  Spec.Workloads.push_back(Load);

  std::unique_ptr<DataGrid> G = DataGrid::buildFrom(Spec);
  G->sim().setThreads(Threads);

  CostModelPolicy Cost;
  // Two-choice sampling over the cost model: at 2500 selections/s
  // against 30 s NWS forecasts, plain arg-max herds every request for a
  // hot file onto the same holder until the next measurement (and the
  // open-loop backlog diverges).  Ranking a random pair keeps the cost
  // model's preference while spreading the herd.
  TwoChoicePolicy Policy(Cost, RandomEngine(Seed * 7919 + 13).fork());
  ReplicaSelector Sel(G->catalog(), G->info(), Policy);
  ReplicaManager Mgr(G->catalog(), Sel, G->transfers());
  // Scale-mode cap refresh: one network rebalance per refresh tick
  // instead of one per live stripe (the grid couples into one component
  // through the core, so per-stripe solves are O(flows^2) per tick).
  G->transfers().setBatchedRefresh(true);
  WorkloadDriver Driver(*G, Mgr);
  Driver.setSampleCap(1 << 16);

  FetchOptions FO;
  // 8 parallel streams: on 64 KiB windows and ~50 ms cross-region RTTs
  // one stream moves ~10 Mb/s (the paper's fig. 4 premise), so parallel
  // streams are what keeps sojourns short and flow concurrency bounded.
  FO.Streams = 8;
  FO.MaxFailovers = 2;
  FO.Register = false; // Keep the catalog (and selection cost) fixed.
  Driver.start(0, FO);

  RssProbe Probe;
  G->sim().scheduleDaemonAt(Load.Start + Load.Duration / 2.0,
                            [&Probe] { Probe.MidBytes = currentRssBytes(); });
  G->sim().run();
  Probe.EndBytes = currentRssBytes();
  {
    std::lock_guard<std::mutex> Lock(RssMutex);
    RssProbes.push_back(Probe);
  }

  const WorkloadCounters &C = Driver.counters();
  exp::TrialResult Result;
  Result.set("arrivals", double(C.Arrivals));
  Result.set("completed", double(C.Completed));
  Result.set("failed", double(C.Failed + C.Shed + C.DeadlineExpired));
  Result.set("local_hits", double(C.LocalHits));
  Result.set("goodput_gb", C.GoodputBytes / 1e9);
  double SojournSum = 0.0;
  for (double S : C.SojournSeconds)
    SojournSum += S;
  Result.set("mean_sojourn_s",
             C.SojournSeconds.empty()
                 ? 0.0
                 : SojournSum / double(C.SojournSeconds.size()));
  Result.SpecHash = G->spec().hash();
  Result.EventsExecuted = G->sim().eventsExecuted();
  return Result;
}

} // namespace

int main(int argc, char **argv) {
  exp::BenchOptions Opt =
      exp::parseBenchOptions(argc, argv, "scale", /*BaseSeed=*/7);
  bench::banner("Tiered-grid scale-out",
                "paper future work: replica selection in a dynamic, larger "
                "number of sites environment (MONARC-style tiers)");

  const size_t Sites = Opt.Quick ? 64 : 1024;
  const uint64_t Transfers = Opt.Quick ? 10000 : 1000000;
  const unsigned Threads = Opt.threads();

  // With --threads T > 1 the sweep runs two arms, serial and threaded, so
  // the run measures its own intra-run speedup (events/s per arm).  The
  // metrics columns must agree between arms — that is the determinism
  // contract — and the footer reports the wall-clock ratio.
  std::vector<std::string> ThreadArms = {"1"};
  if (Threads > 1)
    ThreadArms.push_back(std::to_string(Threads));

  struct ArmStat {
    double WallSeconds = 0.0;
    uint64_t Events = 0;
  };
  std::mutex ArmMutex;
  std::map<unsigned, ArmStat> Arms;

  exp::Scenario S;
  S.Id = Opt.Id;
  S.Title = "Open-loop fetch stream over a tiered grid";
  S.Axes = {{"sites", {std::to_string(Sites)}}, {"threads", ThreadArms}};
  S.Seeds = Opt.seeds();
  S.Metrics = {"arrivals",   "completed",  "failed",
               "local_hits", "goodput_gb", "mean_sojourn_s"};
  S.Run = [Transfers, &ArmMutex, &Arms](const exp::TrialPoint &P) {
    unsigned T =
        unsigned(std::strtoul(P.param("threads").c_str(), nullptr, 10));
    auto A0 = std::chrono::steady_clock::now();
    exp::TrialResult R =
        runTier(std::strtoull(P.param("sites").c_str(), nullptr, 10),
                Transfers, P.Seed, T);
    double Wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - A0)
            .count();
    std::lock_guard<std::mutex> Lock(ArmMutex);
    Arms[T].WallSeconds += Wall;
    Arms[T].Events += R.EventsExecuted;
    return R;
  };
  auto Footer = [Threads, &Arms](json::JsonWriter &W) {
    W.key("parallel");
    W.beginObject();
    W.member("threads", uint64_t(Threads));
    for (const auto &[T, A] : Arms) {
      std::string Key = "events_per_s_t" + std::to_string(T);
      W.member(Key, A.WallSeconds > 0.0 ? double(A.Events) / A.WallSeconds
                                        : 0.0);
    }
    if (Threads > 1 && Arms.count(1) && Arms.count(Threads) &&
        Arms.at(Threads).WallSeconds > 0.0)
      W.member("speedup", Arms.at(1).WallSeconds /
                              Arms.at(Threads).WallSeconds);
    W.endObject();
  };
  auto T0 = std::chrono::steady_clock::now();
  std::vector<exp::TrialRecord> Records = exp::runScenario(S, Opt, Footer);
  double SweepWall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();

  double Arrivals = 0.0, Completed = 0.0;
  uint64_t Events = 0;
  double SlowestTrial = 0.0;
  for (const exp::TrialRecord &R : Records) {
    Arrivals += R.Result.get("arrivals");
    Completed += R.Result.get("completed");
    Events += R.Result.EventsExecuted;
    if (R.WallSeconds > SlowestTrial)
      SlowestTrial = R.WallSeconds;
  }

  bench::shapeCheckGe(Arrivals, 0.9 * double(Transfers) * Records.size(),
                      "arrivals", "the stream offers the declared load");
  bench::shapeCheckGe(Completed / Arrivals, 0.98, "completion_ratio",
                      "virtually every fetch completes (no deadline, "
                      "healthy grid)");
  // The headline scale criterion: a 1k-site, 1M-transfer trial finishes
  // in minutes on one core (the quick matrix gets a proportional bound).
  bench::shapeCheckLe(SlowestTrial, Opt.Quick ? 60.0 : 300.0,
                      "slowest_trial_s",
                      "a full trial fits the single-core time budget");
  if (Threads > 1) {
    // The determinism contract, checked end to end: the threaded arm must
    // reproduce the serial arm bit for bit (metrics and event counts).
    std::map<uint64_t, const exp::TrialRecord *> SerialBySeed;
    for (const exp::TrialRecord &R : Records)
      if (R.Point.param("threads") == "1")
        SerialBySeed[R.Point.Seed] = &R;
    bool Identical = true;
    for (const exp::TrialRecord &R : Records)
      if (R.Point.param("threads") != "1") {
        const exp::TrialRecord *Ser = SerialBySeed[R.Point.Seed];
        Identical = Identical && Ser &&
                    Ser->Result.Metrics == R.Result.Metrics &&
                    Ser->Result.EventsExecuted == R.Result.EventsExecuted &&
                    Ser->Result.SpecHash == R.Result.SpecHash;
      }
    bench::shapeCheck(Identical,
                      "threaded arm reproduces the serial arm bit-for-bit");
  }
  if (Opt.Jobs == 1) {
    // Memory must be flat once the sensor population is warm: the probes
    // bracket the second half of the workload, where transfer count
    // doubles but the monitored-pair population has reached steady state.
    double WorstGrowth = 0.0;
    for (const RssProbe &P : RssProbes)
      if (P.MidBytes != 0)
        WorstGrowth = std::max(WorstGrowth,
                               double(P.EndBytes) / double(P.MidBytes));
    bench::shapeCheckLe(WorstGrowth, 1.5, "rss_end_over_mid",
                        "peak RSS is flat after warm-up (sublinear in "
                        "transfer count)");
  }

  std::printf("\ntransfers: %.0f completed (%.0f transfers/s host-side)\n",
              Completed, SweepWall > 0.0 ? Completed / SweepWall : 0.0);
  if (Threads > 1 && Arms.count(1) && Arms.count(Threads) &&
      Arms.at(Threads).WallSeconds > 0.0 && Arms.at(1).WallSeconds > 0.0) {
    const ArmStat &Serial = Arms.at(1), &Par = Arms.at(Threads);
    std::printf("threads: %u, events/s %.0f (serial) vs %.0f (threaded), "
                "speedup %.2fx\n",
                Threads, double(Serial.Events) / Serial.WallSeconds,
                double(Par.Events) / Par.WallSeconds,
                Serial.WallSeconds / Par.WallSeconds);
  }
  bench::printRunFooter(Events, SweepWall);
  return bench::exitCode();
}
