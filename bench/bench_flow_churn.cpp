//===- bench/bench_flow_churn.cpp -----------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Macro run: network-substrate flow churn at production scale.
///
/// Keeps 1k / 10k concurrent flows alive while starting, cancelling and
/// re-capping flows under a running clock, on two topologies:
///
///   * isolated-pairs — many independent bottlenecks, the geometry
///     incremental rebalancing exploits (events re-solve one small
///     component, not the world);
///   * shared-core — a star where saturated access channels chain most
///     flows into one component, the adversarial case where only the
///     event-driven solver (not incrementality) can help.
///
/// Reports end-to-end churn throughput, the mean re-solved component size,
/// and the final divergence from a full from-scratch solve, which must stay
/// within the 1e-9 check-mode tolerance.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "exp/Options.h"
#include "net/FlowNetwork.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

using namespace dgsim;
using namespace dgsim::units;

namespace {

struct ChurnResult {
  double StepsPerSec = 0.0;
  double EventsPerSec = 0.0;
  double MeanComponent = 0.0;
  double MaxError = 0.0;
  /// Wall seconds of the churn window (host-side; provenance only).
  double WallSeconds = 0.0;
  /// Kernel events executed during the window — deterministic, so the
  /// threaded arms must reproduce it exactly.
  uint64_t Events = 0;
  uint64_t DemandsSolved = 0;
  /// Component solves the partitioned parallel path handled.
  uint64_t ParallelSolves = 0;
};

/// Builds the topology, ramps up to \p NumFlows concurrent flows, then runs
/// \p Steps churn operations with the clock advancing so completions and
/// stale heap entries are exercised too.  \p Threads drives the
/// simulator's parallel executor; rates and statistics are bit-identical
/// for any value.
ChurnResult runChurn(size_t NumFlows, bool SharedCore, size_t Steps,
                     uint64_t Seed, unsigned Threads = 1) {
  Simulator Sim(Seed);
  Sim.setThreads(Threads);
  Topology Topo;
  constexpr size_t NumSites = 128;
  std::vector<NodeId> Src(NumSites), Dst(NumSites);
  if (SharedCore) {
    NodeId Core = Topo.addNode("core");
    for (size_t I = 0; I < NumSites; ++I) {
      Src[I] = Topo.addNode("site" + std::to_string(I));
      Topo.addLink(Src[I], Core, gbps(1), 0.002);
      Dst[I] = Src[I]; // Flows run site -> site through the core.
    }
  } else {
    for (size_t I = 0; I < NumSites; ++I) {
      Src[I] = Topo.addNode("src" + std::to_string(I));
      Dst[I] = Topo.addNode("dst" + std::to_string(I));
      Topo.addLink(Src[I], Dst[I], gbps(1), 0.002);
    }
  }
  Routing Router(Topo);
  TcpModel Tcp;
  FlowNetwork Net(Sim, Topo, Router, Tcp);

  RandomEngine Rng(Seed * 48271 + NumFlows);
  auto pickPair = [&](NodeId &S, NodeId &D) {
    size_t A = size_t(Rng.uniform() * NumSites) % NumSites;
    if (SharedCore) {
      size_t B = (A + 1 + size_t(Rng.uniform() * (NumSites - 1))) % NumSites;
      S = Src[A];
      D = Src[B];
    } else {
      S = Src[A];
      D = Dst[A];
    }
  };
  auto start = [&] {
    NodeId S, D;
    pickPair(S, D);
    FlowOptions Options;
    Options.Streams = 1 + unsigned(Rng.uniform() * 4.0);
    Options.EndpointCap = Rng.uniform(mbps(1), mbps(50));
    Options.Background = true;
    // Large enough that churn, not completion, dominates; finite so the
    // completion machinery still fires under the advancing clock.
    return Net.startFlow(S, D, gigabytes(Rng.uniform(1.0, 64.0)), Options,
                         nullptr);
  };

  std::vector<FlowId> LiveIds;
  LiveIds.reserve(NumFlows);
  for (size_t I = 0; I < NumFlows; ++I)
    LiveIds.push_back(start());

  uint64_t Events0 = Net.rebalanceEvents();
  uint64_t Demands0 = Net.rebalanceDemandsSolved();
  uint64_t SimEvents0 = Sim.eventsExecuted();
  auto Wall0 = std::chrono::steady_clock::now();
  for (size_t I = 0; I < Steps; ++I) {
    // Drop flows that completed while the clock advanced.
    while (!LiveIds.empty() && Net.remainingBytes(LiveIds.back()) == 0.0)
      LiveIds.pop_back();
    double Op = Rng.uniform();
    if (Op < 0.40 && !LiveIds.empty()) {
      size_t Pick = size_t(Rng.uniform() * LiveIds.size()) % LiveIds.size();
      Net.cancelFlow(LiveIds[Pick]);
      LiveIds[Pick] = LiveIds.back();
      LiveIds.pop_back();
      LiveIds.push_back(start());
    } else if (Op < 0.80 || LiveIds.empty()) {
      LiveIds.push_back(start());
      if (LiveIds.size() > NumFlows) {
        Net.cancelFlow(LiveIds.front());
        LiveIds.front() = LiveIds.back();
        LiveIds.pop_back();
      }
    } else {
      size_t Pick = size_t(Rng.uniform() * LiveIds.size()) % LiveIds.size();
      Net.setEndpointCap(LiveIds[Pick], Rng.uniform(mbps(1), mbps(50)));
    }
    if (I % 64 == 63)
      Sim.runUntil(Sim.now() + 0.1);
  }
  auto Wall1 = std::chrono::steady_clock::now();

  ChurnResult R;
  double Seconds = std::chrono::duration<double>(Wall1 - Wall0).count();
  R.WallSeconds = Seconds;
  R.StepsPerSec = Seconds > 0.0 ? double(Steps) / Seconds : 0.0;
  uint64_t SimEvents = Sim.eventsExecuted() - SimEvents0;
  R.Events = SimEvents;
  R.EventsPerSec = Seconds > 0.0 ? double(SimEvents) / Seconds : 0.0;
  uint64_t Events = Net.rebalanceEvents() - Events0;
  uint64_t Demands = Net.rebalanceDemandsSolved() - Demands0;
  R.DemandsSolved = Demands;
  R.MeanComponent = Events > 0 ? double(Demands) / double(Events) : 0.0;
  R.MaxError = Net.maxRebalanceError();
  R.ParallelSolves = Net.parallelSolves();
  return R;
}

} // namespace

int main(int argc, char **argv) {
  exp::BenchOptions Opt =
      exp::parseBenchOptions(argc, argv, "flow_churn", /*BaseSeed=*/7);
  const unsigned Threads = Opt.threads();
  const uint64_t Seed = Opt.BaseSeed;
  const size_t Div = Opt.Quick ? 4 : 1;
  bench::banner("Network substrate: flow churn at scale",
                "perf harness for incremental rebalancing (events re-solve "
                "one component, not every concurrent flow)");

  Table T;
  T.setHeader(
      {"flows", "topology", "threads", "steps/s", "events/s",
       "mean component", "max err"});
  ChurnResult Pairs1k = runChurn(1000, false, 2000 / Div, Seed);
  ChurnResult Pairs10k = runChurn(10000, false, 2000 / Div, Seed);
  ChurnResult Core1k = runChurn(1000, true, 1000 / Div, Seed);
  ChurnResult Core10k = runChurn(10000, true, 200 / Div, Seed);
  auto Row = [&](size_t Flows, const char *Topo, unsigned Thr,
                 const ChurnResult &R) {
    T.beginRow();
    T.add(static_cast<long long>(Flows));
    T.add(Topo);
    T.add(static_cast<long long>(Thr));
    T.add(R.StepsPerSec, 0);
    T.add(R.EventsPerSec, 0);
    T.add(R.MeanComponent, 1);
    T.add(R.MaxError, 12);
  };
  Row(1000, "isolated-pairs", 1, Pairs1k);
  Row(10000, "isolated-pairs", 1, Pairs10k);
  Row(1000, "shared-core", 1, Core1k);
  Row(10000, "shared-core", 1, Core10k);

  // Threaded arms: re-run the coupled topologies (where components get
  // large enough for the partitioned parallel solve) and demand bitwise
  // agreement with the serial statistics.
  ChurnResult Core1kT, Core10kT;
  if (Threads > 1) {
    Core1kT = runChurn(1000, true, 1000 / Div, Seed, Threads);
    Core10kT = runChurn(10000, true, 200 / Div, Seed, Threads);
    Row(1000, "shared-core", Threads, Core1kT);
    Row(10000, "shared-core", Threads, Core10kT);
  }
  T.print(stdout);
  std::printf("\n");

  double WorstErr =
      std::max(std::max(Pairs1k.MaxError, Pairs10k.MaxError),
               std::max(Core1k.MaxError, Core10k.MaxError));
  bool Exact = WorstErr <= 1e-9;
  // 10x the flows must not mean 10x the work per event where bottlenecks
  // are independent: the component stays the bottleneck's flow set.
  bool Incremental = Pairs10k.MeanComponent <= double(10000) / 10.0;
  // At 1k flows the pair links are unsaturated (components of ~1 demand);
  // at 10k they saturate (~80 demands), so steps/s legitimately drops.
  // What must hold is the demand-solve rate: 10x the flows must not make
  // each solved demand materially more expensive.
  auto DemandsPerSec = [](const ChurnResult &R) {
    return R.StepsPerSec * std::max(R.MeanComponent, 1.0);
  };
  bool Scales = DemandsPerSec(Pairs10k) >= DemandsPerSec(Pairs1k) / 5.0;
  bench::shapeCheck(Exact,
                    "incremental rates match a full solve to 1e-9 after "
                    "thousands of churn events");
  bench::shapeCheck(Incremental,
                    "mean re-solved component stays small on independent "
                    "bottlenecks (10k flows)");
  bench::shapeCheck(Scales,
                    "churn throughput degrades sublinearly from 1k to 10k "
                    "concurrent flows");
  if (Threads > 1) {
    auto Same = [](const ChurnResult &A, const ChurnResult &B) {
      return A.Events == B.Events && A.DemandsSolved == B.DemandsSolved &&
             A.MeanComponent == B.MeanComponent && A.MaxError == B.MaxError;
    };
    bench::shapeCheck(Same(Core1k, Core1kT) && Same(Core10k, Core10kT),
                      "threaded churn reproduces the serial rebalance "
                      "statistics bit-for-bit");
    std::printf("threads: %u, shared-core 10k events/s %.0f (serial) vs "
                "%.0f (threaded), speedup %.2fx, %llu parallel solves\n",
                Threads, Core10k.EventsPerSec, Core10kT.EventsPerSec,
                Core10kT.WallSeconds > 0.0
                    ? Core10k.WallSeconds / Core10kT.WallSeconds
                    : 0.0,
                static_cast<unsigned long long>(Core10kT.ParallelSolves));
  }

  std::string JsonPath = Opt.jsonPath();
  if (!JsonPath.empty()) {
    json::JsonWriter W;
    W.beginObject();
    W.member("schema", "dgsim-flow-churn-v1");
    W.member("id", Opt.Id);
    W.member("git", exp::gitDescribe());
    W.member("seed", Seed);
    W.key("configs");
    W.beginArray();
    auto Emit = [&W](size_t Flows, const char *Topo, unsigned Thr,
                     const ChurnResult &R) {
      W.beginObject();
      W.member("flows", uint64_t(Flows));
      W.member("topology", Topo);
      W.member("threads", uint64_t(Thr));
      W.member("steps_per_s", R.StepsPerSec);
      W.member("events_per_s", R.EventsPerSec);
      W.member("mean_component", R.MeanComponent);
      W.member("max_err", R.MaxError);
      W.member("events", R.Events);
      W.member("wall_s", R.WallSeconds);
      W.endObject();
    };
    Emit(1000, "isolated-pairs", 1, Pairs1k);
    Emit(10000, "isolated-pairs", 1, Pairs10k);
    Emit(1000, "shared-core", 1, Core1k);
    Emit(10000, "shared-core", 1, Core10k);
    if (Threads > 1) {
      Emit(1000, "shared-core", Threads, Core1kT);
      Emit(10000, "shared-core", Threads, Core10kT);
    }
    W.endArray();
    W.key("parallel");
    W.beginObject();
    W.member("threads", uint64_t(Threads));
    if (Threads > 1 && Core10kT.WallSeconds > 0.0) {
      W.member("speedup_shared_core_10k",
               Core10k.WallSeconds / Core10kT.WallSeconds);
      W.member("parallel_solves", Core10kT.ParallelSolves);
    }
    W.endObject();
    W.endObject();
    std::string Doc = W.take();
    if (std::FILE *F = std::fopen(JsonPath.c_str(), "w")) {
      std::fwrite(Doc.data(), 1, Doc.size(), F);
      std::fputc('\n', F);
      std::fclose(F);
      std::printf("json -> %s\n", JsonPath.c_str());
    } else {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                   JsonPath.c_str());
      return 2;
    }
  }
  return bench::exitCode();
}
