//===- bench/bench_flow_churn.cpp -----------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Macro run: network-substrate flow churn at production scale.
///
/// Keeps 1k / 10k concurrent flows alive while starting, cancelling and
/// re-capping flows under a running clock, on two topologies:
///
///   * isolated-pairs — many independent bottlenecks, the geometry
///     incremental rebalancing exploits (events re-solve one small
///     component, not the world);
///   * shared-core — a star where saturated access channels chain most
///     flows into one component, the adversarial case where only the
///     event-driven solver (not incrementality) can help.
///
/// Reports end-to-end churn throughput, the mean re-solved component size,
/// and the final divergence from a full from-scratch solve, which must stay
/// within the 1e-9 check-mode tolerance.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "net/FlowNetwork.h"

#include <algorithm>
#include <chrono>
#include <vector>

using namespace dgsim;
using namespace dgsim::units;

namespace {

struct ChurnResult {
  double StepsPerSec = 0.0;
  double EventsPerSec = 0.0;
  double MeanComponent = 0.0;
  double MaxError = 0.0;
};

/// Builds the topology, ramps up to \p NumFlows concurrent flows, then runs
/// \p Steps churn operations with the clock advancing so completions and
/// stale heap entries are exercised too.
ChurnResult runChurn(size_t NumFlows, bool SharedCore, size_t Steps,
                     uint64_t Seed) {
  Simulator Sim(Seed);
  Topology Topo;
  constexpr size_t NumSites = 128;
  std::vector<NodeId> Src(NumSites), Dst(NumSites);
  if (SharedCore) {
    NodeId Core = Topo.addNode("core");
    for (size_t I = 0; I < NumSites; ++I) {
      Src[I] = Topo.addNode("site" + std::to_string(I));
      Topo.addLink(Src[I], Core, gbps(1), 0.002);
      Dst[I] = Src[I]; // Flows run site -> site through the core.
    }
  } else {
    for (size_t I = 0; I < NumSites; ++I) {
      Src[I] = Topo.addNode("src" + std::to_string(I));
      Dst[I] = Topo.addNode("dst" + std::to_string(I));
      Topo.addLink(Src[I], Dst[I], gbps(1), 0.002);
    }
  }
  Routing Router(Topo);
  TcpModel Tcp;
  FlowNetwork Net(Sim, Topo, Router, Tcp);

  RandomEngine Rng(Seed * 48271 + NumFlows);
  auto pickPair = [&](NodeId &S, NodeId &D) {
    size_t A = size_t(Rng.uniform() * NumSites) % NumSites;
    if (SharedCore) {
      size_t B = (A + 1 + size_t(Rng.uniform() * (NumSites - 1))) % NumSites;
      S = Src[A];
      D = Src[B];
    } else {
      S = Src[A];
      D = Dst[A];
    }
  };
  auto start = [&] {
    NodeId S, D;
    pickPair(S, D);
    FlowOptions Options;
    Options.Streams = 1 + unsigned(Rng.uniform() * 4.0);
    Options.EndpointCap = Rng.uniform(mbps(1), mbps(50));
    Options.Background = true;
    // Large enough that churn, not completion, dominates; finite so the
    // completion machinery still fires under the advancing clock.
    return Net.startFlow(S, D, gigabytes(Rng.uniform(1.0, 64.0)), Options,
                         nullptr);
  };

  std::vector<FlowId> LiveIds;
  LiveIds.reserve(NumFlows);
  for (size_t I = 0; I < NumFlows; ++I)
    LiveIds.push_back(start());

  uint64_t Events0 = Net.rebalanceEvents();
  uint64_t Demands0 = Net.rebalanceDemandsSolved();
  uint64_t SimEvents0 = Sim.eventsExecuted();
  auto Wall0 = std::chrono::steady_clock::now();
  for (size_t I = 0; I < Steps; ++I) {
    // Drop flows that completed while the clock advanced.
    while (!LiveIds.empty() && Net.remainingBytes(LiveIds.back()) == 0.0)
      LiveIds.pop_back();
    double Op = Rng.uniform();
    if (Op < 0.40 && !LiveIds.empty()) {
      size_t Pick = size_t(Rng.uniform() * LiveIds.size()) % LiveIds.size();
      Net.cancelFlow(LiveIds[Pick]);
      LiveIds[Pick] = LiveIds.back();
      LiveIds.pop_back();
      LiveIds.push_back(start());
    } else if (Op < 0.80 || LiveIds.empty()) {
      LiveIds.push_back(start());
      if (LiveIds.size() > NumFlows) {
        Net.cancelFlow(LiveIds.front());
        LiveIds.front() = LiveIds.back();
        LiveIds.pop_back();
      }
    } else {
      size_t Pick = size_t(Rng.uniform() * LiveIds.size()) % LiveIds.size();
      Net.setEndpointCap(LiveIds[Pick], Rng.uniform(mbps(1), mbps(50)));
    }
    if (I % 64 == 63)
      Sim.runUntil(Sim.now() + 0.1);
  }
  auto Wall1 = std::chrono::steady_clock::now();

  ChurnResult R;
  double Seconds = std::chrono::duration<double>(Wall1 - Wall0).count();
  R.StepsPerSec = Seconds > 0.0 ? double(Steps) / Seconds : 0.0;
  uint64_t SimEvents = Sim.eventsExecuted() - SimEvents0;
  R.EventsPerSec = Seconds > 0.0 ? double(SimEvents) / Seconds : 0.0;
  uint64_t Events = Net.rebalanceEvents() - Events0;
  uint64_t Demands = Net.rebalanceDemandsSolved() - Demands0;
  R.MeanComponent = Events > 0 ? double(Demands) / double(Events) : 0.0;
  R.MaxError = Net.maxRebalanceError();
  return R;
}

} // namespace

int main() {
  bench::banner("Network substrate: flow churn at scale",
                "perf harness for incremental rebalancing (events re-solve "
                "one component, not every concurrent flow)");

  Table T;
  T.setHeader(
      {"flows", "topology", "steps/s", "events/s", "mean component",
       "max err"});
  ChurnResult Pairs1k = runChurn(1000, false, 2000, 7);
  ChurnResult Pairs10k = runChurn(10000, false, 2000, 7);
  ChurnResult Core1k = runChurn(1000, true, 1000, 7);
  ChurnResult Core10k = runChurn(10000, true, 200, 7);
  auto Row = [&](size_t Flows, const char *Topo, const ChurnResult &R) {
    T.beginRow();
    T.add(static_cast<long long>(Flows));
    T.add(Topo);
    T.add(R.StepsPerSec, 0);
    T.add(R.EventsPerSec, 0);
    T.add(R.MeanComponent, 1);
    T.add(R.MaxError, 12);
  };
  Row(1000, "isolated-pairs", Pairs1k);
  Row(10000, "isolated-pairs", Pairs10k);
  Row(1000, "shared-core", Core1k);
  Row(10000, "shared-core", Core10k);
  T.print(stdout);
  std::printf("\n");

  double WorstErr =
      std::max(std::max(Pairs1k.MaxError, Pairs10k.MaxError),
               std::max(Core1k.MaxError, Core10k.MaxError));
  bool Exact = WorstErr <= 1e-9;
  // 10x the flows must not mean 10x the work per event where bottlenecks
  // are independent: the component stays the bottleneck's flow set.
  bool Incremental = Pairs10k.MeanComponent <= double(10000) / 10.0;
  // At 1k flows the pair links are unsaturated (components of ~1 demand);
  // at 10k they saturate (~80 demands), so steps/s legitimately drops.
  // What must hold is the demand-solve rate: 10x the flows must not make
  // each solved demand materially more expensive.
  auto DemandsPerSec = [](const ChurnResult &R) {
    return R.StepsPerSec * std::max(R.MeanComponent, 1.0);
  };
  bool Scales = DemandsPerSec(Pairs10k) >= DemandsPerSec(Pairs1k) / 5.0;
  bench::shapeCheck(Exact,
                    "incremental rates match a full solve to 1e-9 after "
                    "thousands of churn events");
  bench::shapeCheck(Incremental,
                    "mean re-solved component stays small on independent "
                    "bottlenecks (10k flows)");
  bench::shapeCheck(Scales,
                    "churn throughput degrades sublinearly from 1k to 10k "
                    "concurrent flows");
  return bench::exitCode();
}
