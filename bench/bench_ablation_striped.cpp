//===- bench/bench_ablation_striped.cpp ---------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension: striped data transfer (the paper's first future-work item:
/// "another striped data transfer feature that can improve aggregate
/// bandwidth").
///
/// Striping sends disjoint partitions of one file from several source
/// hosts at once.  Where parallel streams multiply per-connection TCP
/// limits, striping additionally multiplies *end-system* limits (disk
/// read bandwidth).  We show both regimes: on the disk-bound THU -> HIT
/// gigabit path striping scales with the stripe count; on the
/// network-bound Li-Zen path it cannot beat the 30 Mb/s bottleneck.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <map>
#include <vector>

using namespace dgsim;
using namespace dgsim::units;

namespace {

/// Fetches 1024 MB to \p Dest from the first \p Stripes hosts of
/// \p Sources (striped MODE E, 8 streams per stripe) on a fresh testbed.
double runStriped(const std::vector<std::string> &Sources, size_t Stripes,
                  const std::string &Dest) {
  PaperTestbedOptions O;
  O.DynamicLoad = false;
  O.CrossTraffic = false;
  PaperTestbed T(O);
  T.sim().runUntil(bench::WarmupSeconds);
  TransferSpec Spec;
  for (size_t I = 0; I < Stripes; ++I)
    Spec.Stripes.push_back(T.grid().findHost(Sources[I]));
  Spec.Destination = T.grid().findHost(Dest);
  Spec.FileBytes = megabytes(1024);
  Spec.Protocol = TransferProtocol::GridFtpModeE;
  Spec.Streams = 8;
  double Seconds = 0.0;
  T.grid().transfers().submit(
      Spec, [&](const TransferResult &R) { Seconds = R.totalSeconds(); });
  T.sim().run();
  return Seconds;
}

} // namespace

int main() {
  bench::banner("Extension: striped data transfer",
                "paper future work: striped transfers vs stripe count, "
                "disk-bound and network-bound paths");

  const std::vector<std::string> ThuSources = {"alpha1", "alpha2", "alpha3",
                                               "alpha4"};
  const std::vector<std::string> LzSources = {"lz01", "lz02", "lz03",
                                              "lz04"};

  Table T;
  T.setHeader({"stripes", "THU->hit3 (disk-bound) s", "speedup",
               "LiZen->alpha1 (net-bound) s", "speedup"});
  std::map<size_t, double> Thu, Lz;
  for (size_t Stripes : {1u, 2u, 3u, 4u}) {
    Thu[Stripes] = runStriped(ThuSources, Stripes, "hit3");
    Lz[Stripes] = runStriped(LzSources, Stripes, "alpha1");
    T.beginRow();
    T.add(static_cast<long long>(Stripes));
    T.add(Thu[Stripes], 1);
    T.add(Thu[1] / Thu[Stripes], 2);
    T.add(Lz[Stripes], 1);
    T.add(Lz[1] / Lz[Stripes], 2);
  }
  T.print(stdout);
  std::printf("\n");

  // With 8 streams per stripe the THU->HIT WAN path is TCP/window-bound at
  // one stripe (~225 Mb/s); a second stripe doubles the TCP aggregate but
  // runs into the *destination* disk (one spindle, shared by all stripes,
  // with background I/O), so the gain is real yet bounded — the reason
  // production striped GridFTP stripes the receiving end too.
  bool ThuScales = Thu[2] < Thu[1] * 0.88;
  bool ThuCeiling = Thu[4] > Thu[2] * 0.92; // Extra stripes: no new gain.
  bool LzFlat = Lz[4] > Lz[1] * 0.9; // 30 Mb/s bottleneck: no gain.
  bench::shapeCheck(ThuScales,
                    "striping speeds up the gigabit path (>12% at 2 stripes)");
  bench::shapeCheck(ThuCeiling,
                    "gains flatten once the single destination disk binds");
  bench::shapeCheck(LzFlat,
                    "striping cannot beat the Li-Zen 30 Mb/s bottleneck");
  return bench::exitCode();
}
