//===- bench/bench_ablation_reliability.cpp -----------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: the value of GridFTP's reliability machinery.
///
/// The paper's background (§1, citing Allcock et al.) calls a "secure,
/// reliable, efficient data transport protocol" one of the Data Grid's two
/// essential services.  Two experiments quantify "reliable":
///
///   1. Surgical failures: identical 1 GB transfers over the lossy Li-Zen
///      path suffer a data-connection failure at 25/50/75% progress;
///      GridFTP resumes from its restart markers while plain FTP starts
///      over, and the wasted time diverges accordingly.
///
///   2. Availability vs MTBF: a Li-Zen client fetches a replicated file
///      while seeded MTBF/MTTR fault processes take the WAN links and a
///      replica's storage down at random.  The full recovery stack runs —
///      stall-timeout detection, exponential backoff, restart markers,
///      and failover to surviving replicas — and the sweep reports the
///      fraction of fetches that still complete as faults get denser.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "exp/Options.h"
#include "fault/FaultInjector.h"
#include "replica/ReplicaManager.h"

#include <cmath>
#include <cstdlib>
#include <map>

using namespace dgsim;
using namespace dgsim::units;

namespace {

/// Runs one 1 GB alpha2 -> lz04 transfer, injecting a failure at the given
/// fraction of the (known) clean data time.  Fraction < 0 disables it.
double runWithFailure(TransferProtocol Protocol, double Fraction,
                      double CleanStartup, double CleanData) {
  PaperTestbedOptions O;
  O.DynamicLoad = false;
  O.CrossTraffic = false;
  PaperTestbed T(O);
  T.sim().runUntil(bench::WarmupSeconds);
  TransferSpec Spec;
  Spec.Source = &T.alpha(2);
  Spec.Destination = &T.lz(4);
  Spec.FileBytes = megabytes(1024);
  Spec.Protocol = Protocol;
  Spec.Streams = Protocol == TransferProtocol::GridFtpModeE ? 8 : 1;
  double Total = 0.0;
  TransferId Id = T.grid().transfers().submit(
      Spec, [&](const TransferResult &R) { Total = R.totalSeconds(); });
  if (Fraction >= 0.0)
    T.sim().schedule(CleanStartup + CleanData * Fraction,
                     [&] { T.grid().transfers().injectFailure(Id); });
  T.sim().run();
  return Total;
}

void surgicalFailureTable() {
  // Clean baselines (also calibrate the failure instants).
  struct Proto {
    const char *Name;
    TransferProtocol P;
  };
  const Proto Protos[] = {{"ftp", TransferProtocol::Ftp},
                          {"gridftp-modeE", TransferProtocol::GridFtpModeE}};
  std::map<std::string, double> Clean, Startup, Data;
  for (const Proto &Pr : Protos) {
    PaperTestbedOptions O;
    O.DynamicLoad = false;
    O.CrossTraffic = false;
    PaperTestbed T(O);
    T.sim().runUntil(bench::WarmupSeconds);
    TransferSpec Spec;
    Spec.Source = &T.alpha(2);
    Spec.Destination = &T.lz(4);
    Spec.FileBytes = megabytes(1024);
    Spec.Protocol = Pr.P;
    Spec.Streams = Pr.P == TransferProtocol::GridFtpModeE ? 8 : 1;
    TransferResult R;
    T.grid().transfers().submit(Spec,
                                [&](const TransferResult &Res) { R = Res; });
    T.sim().run();
    Clean[Pr.Name] = R.totalSeconds();
    Startup[Pr.Name] = R.StartupSeconds;
    Data[Pr.Name] = R.DataSeconds;
  }

  Table T;
  T.setHeader({"failure at", "FTP (s)", "FTP overhead", "GridFTP (s)",
               "GridFTP overhead"});
  std::map<double, std::map<std::string, double>> Results;
  for (double Frac : {-1.0, 0.25, 0.5, 0.75}) {
    T.beginRow();
    if (Frac < 0.0)
      T.add("none");
    else
      T.add(fmt::percent(Frac));
    for (const Proto &Pr : Protos) {
      double Total = runWithFailure(Pr.P, Frac, Startup[Pr.Name],
                                    Data[Pr.Name]);
      Results[Frac][Pr.Name] = Total;
      T.add(Total, 1);
      T.add(fmt::percent(Total / Clean[Pr.Name] - 1.0));
    }
  }
  T.print(stdout);
  std::printf("\n");

  // FTP wastes the progress made before the failure; GridFTP only pays a
  // reconnect.  At 75% progress the gap is stark.
  bool FtpWastesProgress =
      Results[0.75]["ftp"] > Clean["ftp"] * 1.6 &&
      Results[0.25]["ftp"] < Results[0.75]["ftp"];
  bool GridFtpCheap = true;
  for (double Frac : {0.25, 0.5, 0.75})
    GridFtpCheap &=
        Results[Frac]["gridftp-modeE"] < Clean["gridftp-modeE"] * 1.05;
  bench::shapeCheck(FtpWastesProgress,
                    "plain FTP overhead grows with failure lateness");
  bench::shapeCheck(GridFtpCheap,
                    "GridFTP restart costs <5% regardless of when the "
                    "failure hits");
}

constexpr SimTime FaultHorizon = 600.0;
constexpr int Fetches = 8;

/// One chaos trial: a lz04 client fetches a 64 MB file replicated at
/// alpha4 and hit0 every 60 s while MTBF/MTTR processes break the access
/// links and hit0's storage.  Every byte of recovery machinery is on.
exp::TrialResult runChaos(TransferProtocol Protocol, double Mtbf,
                          uint64_t Seed) {
  PaperTestbedOptions O;
  O.Seed = Seed;
  O.DynamicLoad = false;
  O.CrossTraffic = false;
  GridSpec Spec = PaperTestbed::spec(O);
  Spec.Files.push_back({"rel-file", megabytes(64), {"alpha4", "hit0"}});
  Spec.Faults.mtbf(FaultKind::LinkDown, "lizen", "tanet", Mtbf, 15.0,
                   FaultHorizon);
  Spec.Faults.mtbf(FaultKind::LinkDown, "thu", "tanet", Mtbf, 15.0,
                   FaultHorizon);
  Spec.Faults.mtbf(FaultKind::StorageOutage, "hit0", {}, 2.0 * Mtbf, 20.0,
                   FaultHorizon);
  Spec.Faults.sensorBlackout(200.0, 60.0);
  std::unique_ptr<DataGrid> G = DataGrid::buildFrom(Spec);

  RetryPolicy RP;
  RP.StallTimeout = 5.0;
  RP.BackoffBase = 0.5;
  RP.BackoffMax = 8.0;
  RP.MaxAttempts = 3;
  G->transfers().setRetryPolicy(RP);

  CostModelPolicy Policy;
  ReplicaSelector Sel(G->catalog(), G->info(), Policy);
  ReplicaManager Mgr(G->catalog(), Sel, G->transfers());
  Host *Client = G->findHost("lz04");

  unsigned Succeeded = 0;
  unsigned ConservationViolations = 0;
  double SucceededSeconds = 0.0;
  uint64_t Failovers = 0, Restarts = 0, Timeouts = 0;
  double ResentBytes = 0.0;
  for (int I = 0; I < Fetches; ++I) {
    G->sim().scheduleAt(20.0 + 60.0 * I, [&, Protocol] {
      FetchOptions FO;
      FO.Protocol = Protocol;
      FO.Streams = Protocol == TransferProtocol::GridFtpModeE ? 4 : 1;
      FO.MaxFailovers = 4;
      FO.Register = false; // Keep every fetch remote and comparable.
      Mgr.fetch("rel-file", *Client, FO, [&](const FetchResult &R) {
        Failovers += R.Failovers;
        Restarts += R.Restarts;
        Timeouts += R.Timeouts;
        ResentBytes += R.ResentBytes;
        // Byte conservation: success means every payload byte landed
        // exactly once; failure must never over-deliver.
        if (R.Succeeded) {
          ++Succeeded;
          SucceededSeconds += R.EndTime - R.StartTime;
          if (std::abs(R.DeliveredBytes - R.FileBytes) > 1.0)
            ++ConservationViolations;
        } else if (R.DeliveredBytes > R.FileBytes + 1.0) {
          ++ConservationViolations;
        }
      });
    });
  }
  G->sim().run();

  exp::TrialResult Result;
  Result.set("availability", static_cast<double>(Succeeded) / Fetches);
  Result.set("mean_fetch_s",
             Succeeded ? SucceededSeconds / Succeeded : 0.0);
  Result.set("restarts", static_cast<double>(Restarts));
  Result.set("timeouts", static_cast<double>(Timeouts));
  Result.set("failovers", static_cast<double>(Failovers));
  Result.set("resent_mb", ResentBytes / (1024.0 * 1024.0));
  Result.set("faults",
             static_cast<double>(G->faults()->counters().totalFaults()));
  Result.set("conservation_violations",
             static_cast<double>(ConservationViolations));
  Result.SpecHash = G->spec().hash();
  return Result;
}

} // namespace

int main(int argc, char **argv) {
  exp::BenchOptions Opt =
      exp::parseBenchOptions(argc, argv, "abl-reliability", /*BaseSeed=*/77);
  bench::banner("Ablation: transfer reliability under failures",
                "GridFTP restart markers vs plain-FTP restart-from-zero, "
                "and availability vs MTBF under seeded chaos");

  surgicalFailureTable();
  std::printf("\n");

  exp::Scenario S;
  S.Id = Opt.Id;
  S.Title = "Fetch availability vs link/storage MTBF";
  std::vector<std::string> Mtbfs = Opt.Quick
                                       ? std::vector<std::string>{"120", "900"}
                                       : std::vector<std::string>{
                                             "120", "300", "900"};
  S.Axes = {{"protocol", {"ftp", "gridftp"}}, {"mtbf_s", Mtbfs}};
  S.Seeds = Opt.seeds();
  S.Metrics = {"availability", "mean_fetch_s",  "restarts",
               "timeouts",     "failovers",     "resent_mb",
               "faults",       "conservation_violations"};
  S.Run = [](const exp::TrialPoint &P) {
    TransferProtocol Protocol = P.param("protocol") == "ftp"
                                    ? TransferProtocol::Ftp
                                    : TransferProtocol::GridFtpModeE;
    return runChaos(Protocol, std::atof(P.param("mtbf_s").c_str()), P.Seed);
  };
  std::vector<exp::TrialRecord> Records = exp::runScenario(S, Opt);

  Table T;
  T.setHeader({"MTBF (s)", "protocol", "availability", "mean fetch (s)",
               "restarts", "timeouts", "failovers", "resent (MB)"});
  auto Rows = [&](const std::string &Proto, const std::string &Mtbf,
                  const char *Metric) {
    double Sum = 0.0;
    size_t N = 0;
    for (const exp::TrialRecord &R : Records)
      if (R.Point.param("protocol") == Proto &&
          R.Point.param("mtbf_s") == Mtbf) {
        Sum += R.Result.get(Metric);
        ++N;
      }
    return N ? Sum / static_cast<double>(N) : 0.0;
  };
  for (const std::string &Mtbf : Mtbfs) {
    for (const std::string &Proto : {std::string("ftp"),
                                     std::string("gridftp")}) {
      T.beginRow();
      T.add(Mtbf);
      T.add(Proto);
      T.add(Rows(Proto, Mtbf, "availability"), 2);
      T.add(Rows(Proto, Mtbf, "mean_fetch_s"), 1);
      T.add(Rows(Proto, Mtbf, "restarts"), 1);
      T.add(Rows(Proto, Mtbf, "timeouts"), 1);
      T.add(Rows(Proto, Mtbf, "failovers"), 1);
      T.add(Rows(Proto, Mtbf, "resent_mb"), 1);
    }
  }
  T.print(stdout);
  std::printf("\n");

  const std::string Lo = Mtbfs.front(), Hi = Mtbfs.back();
  double ConservationTotal = 0.0;
  for (const exp::TrialRecord &R : Records)
    ConservationTotal += R.Result.get("conservation_violations");
  bench::shapeCheck(ConservationTotal == 0.0,
                    "delivered-byte conservation holds in every trial");
  bench::shapeCheck(Rows("gridftp", Lo, "availability") <=
                            Rows("gridftp", Hi, "availability") + 1e-9 &&
                        Rows("gridftp", Hi, "availability") >= 0.99,
                    "GridFTP availability recovers as MTBF grows");
  bench::shapeCheck(Rows("gridftp", Lo, "restarts") >=
                        Rows("gridftp", Hi, "restarts"),
                    "denser faults cost more restarts");
  bench::shapeCheck(Rows("gridftp", Lo, "resent_mb") == 0.0 &&
                        Rows("gridftp", Hi, "resent_mb") == 0.0,
                    "GridFTP restart markers never re-send payload");
  return bench::exitCode();
}
