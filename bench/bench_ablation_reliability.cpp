//===- bench/bench_ablation_reliability.cpp -----------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: the value of GridFTP's reliability machinery.
///
/// The paper's background (§1, citing Allcock et al.) calls a "secure,
/// reliable, efficient data transport protocol" one of the Data Grid's two
/// essential services.  This bench quantifies "reliable": identical 1 GB
/// transfers over the lossy Li-Zen path suffer a data-connection failure
/// at 25/50/75% progress; GridFTP resumes from its restart markers while
/// plain FTP starts over, and the wasted time diverges accordingly.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <map>

using namespace dgsim;
using namespace dgsim::units;

namespace {

/// Runs one 1 GB alpha2 -> lz04 transfer, injecting a failure at the given
/// fraction of the (known) clean data time.  Fraction < 0 disables it.
double runWithFailure(TransferProtocol Protocol, double Fraction,
                      double CleanStartup, double CleanData) {
  PaperTestbedOptions O;
  O.DynamicLoad = false;
  O.CrossTraffic = false;
  PaperTestbed T(O);
  T.sim().runUntil(bench::WarmupSeconds);
  TransferSpec Spec;
  Spec.Source = &T.alpha(2);
  Spec.Destination = &T.lz(4);
  Spec.FileBytes = megabytes(1024);
  Spec.Protocol = Protocol;
  Spec.Streams = Protocol == TransferProtocol::GridFtpModeE ? 8 : 1;
  double Total = 0.0;
  TransferId Id = T.grid().transfers().submit(
      Spec, [&](const TransferResult &R) { Total = R.totalSeconds(); });
  if (Fraction >= 0.0)
    T.sim().schedule(CleanStartup + CleanData * Fraction,
                     [&] { T.grid().transfers().injectFailure(Id); });
  T.sim().run();
  return Total;
}

} // namespace

int main() {
  bench::banner("Ablation: transfer reliability under failures",
                "GridFTP restart markers vs plain-FTP restart-from-zero "
                "on a 1 GB Li-Zen transfer");

  // Clean baselines (also calibrate the failure instants).
  struct Proto {
    const char *Name;
    TransferProtocol P;
  };
  const Proto Protos[] = {{"ftp", TransferProtocol::Ftp},
                          {"gridftp-modeE", TransferProtocol::GridFtpModeE}};
  std::map<std::string, double> Clean, Startup, Data;
  for (const Proto &Pr : Protos) {
    PaperTestbedOptions O;
    O.DynamicLoad = false;
    O.CrossTraffic = false;
    PaperTestbed T(O);
    T.sim().runUntil(bench::WarmupSeconds);
    TransferSpec Spec;
    Spec.Source = &T.alpha(2);
    Spec.Destination = &T.lz(4);
    Spec.FileBytes = megabytes(1024);
    Spec.Protocol = Pr.P;
    Spec.Streams = Pr.P == TransferProtocol::GridFtpModeE ? 8 : 1;
    TransferResult R;
    T.grid().transfers().submit(Spec,
                                [&](const TransferResult &Res) { R = Res; });
    T.sim().run();
    Clean[Pr.Name] = R.totalSeconds();
    Startup[Pr.Name] = R.StartupSeconds;
    Data[Pr.Name] = R.DataSeconds;
  }

  Table T;
  T.setHeader({"failure at", "FTP (s)", "FTP overhead", "GridFTP (s)",
               "GridFTP overhead"});
  std::map<double, std::map<std::string, double>> Results;
  for (double Frac : {-1.0, 0.25, 0.5, 0.75}) {
    T.beginRow();
    if (Frac < 0.0)
      T.add("none");
    else
      T.add(fmt::percent(Frac));
    for (const Proto &Pr : Protos) {
      double Total = runWithFailure(Pr.P, Frac, Startup[Pr.Name],
                                    Data[Pr.Name]);
      Results[Frac][Pr.Name] = Total;
      T.add(Total, 1);
      T.add(fmt::percent(Total / Clean[Pr.Name] - 1.0));
    }
  }
  T.print(stdout);
  std::printf("\n");

  // FTP wastes the progress made before the failure; GridFTP only pays a
  // reconnect.  At 75% progress the gap is stark.
  bool FtpWastesProgress =
      Results[0.75]["ftp"] > Clean["ftp"] * 1.6 &&
      Results[0.25]["ftp"] < Results[0.75]["ftp"];
  bool GridFtpCheap = true;
  for (double Frac : {0.25, 0.5, 0.75})
    GridFtpCheap &=
        Results[Frac]["gridftp-modeE"] < Clean["gridftp-modeE"] * 1.05;
  bench::shapeCheck(FtpWastesProgress,
                    "plain FTP overhead grows with failure lateness");
  bench::shapeCheck(GridFtpCheap,
                    "GridFTP restart costs <5% regardless of when the "
                    "failure hits");
  return bench::exitCode();
}
