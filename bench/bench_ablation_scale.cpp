//===- bench/bench_ablation_scale.cpp -----------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: replica selection at larger site counts.
///
/// The paper's last future-work item: "extend our Data Grid testbed for
/// analyzing the performance of replica selection in a dynamic and larger
/// number of sites environment."  This bench synthesises grids of 4 to 32
/// sites (heterogeneous access links behind one backbone, one host per
/// site plus a client site), replicates one large file onto a third of the
/// sites, and compares the cost-model policy against random selection as
/// the grid grows.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "grid/DataGrid.h"
#include "replica/ReplicaSelector.h"

#include <map>
#include <memory>

using namespace dgsim;
using namespace dgsim::units;

namespace {

/// Builds a synthetic star grid with \p NumSites server sites and returns
/// the mean fetch time of a 512 MB file over \p Trials selections under
/// the given policy.  Each trial re-selects on the live (dynamic) grid and
/// fetches sequentially.
double runScale(size_t NumSites, const char *Which, uint64_t Seed) {
  DataGrid G(Seed);
  RandomEngine Topology(Seed * 7919 + NumSites);

  SiteConfig Client;
  Client.Name = "client-site";
  Client.Hosts.resize(1);
  Client.Hosts[0].Name = "client";
  G.addSite(Client);

  for (size_t I = 0; I < NumSites; ++I) {
    SiteConfig S;
    S.Name = "site" + std::to_string(I);
    S.Hosts.resize(1);
    SiteHostSpec &H = S.Hosts[0];
    H.Name = "server" + std::to_string(I);
    H.CpuSpeed = Topology.uniform(0.3, 1.2);
    H.CpuMeanLoad = Topology.uniform(0.05, 0.6);
    H.IoMeanLoad = Topology.uniform(0.05, 0.4);
    G.addSite(S);
  }

  NodeId Core = G.addBackboneNode("core");
  G.connectToBackbone("client-site", Core, gbps(1), 0.002, 1e-5);
  for (size_t I = 0; I < NumSites; ++I) {
    // Heterogeneous access links: a few fast, many mediocre, some awful.
    double Tier = Topology.uniform();
    BitRate Cap = Tier > 0.7 ? gbps(1) : Tier > 0.3 ? mbps(100) : mbps(20);
    SimTime Delay = Topology.uniform(0.002, 0.02);
    double Loss = Topology.uniform(1e-5, 3e-3);
    G.connectToBackbone("site" + std::to_string(I), Core, Cap, Delay, Loss);
  }
  G.finalize();

  G.catalog().registerFile("big-file", megabytes(512));
  size_t Replicas = std::max<size_t>(2, NumSites / 3);
  for (size_t I = 0; I < Replicas; ++I) {
    size_t Pick = (I * NumSites) / Replicas;
    G.catalog().addReplica("big-file",
                           *G.findHost("server" + std::to_string(Pick)));
  }

  std::unique_ptr<SelectionPolicy> Policy;
  if (std::string(Which) == "cost-model")
    Policy = std::make_unique<CostModelPolicy>();
  else
    Policy = std::make_unique<RandomPolicy>(RandomEngine(Seed + 1));
  ReplicaSelector Sel(G.catalog(), G.info(), *Policy);

  Host *ClientHost = G.findHost("client");
  G.sim().runUntil(bench::WarmupSeconds);

  double TotalSeconds = 0.0;
  constexpr int Trials = 5;
  for (int Trial = 0; Trial < Trials; ++Trial) {
    SelectionResult R = Sel.select(ClientHost->node(), "big-file");
    TransferSpec Spec;
    Spec.Source = R.Chosen;
    Spec.Destination = ClientHost;
    Spec.FileBytes = megabytes(512);
    Spec.Protocol = TransferProtocol::GridFtpModeE;
    Spec.Streams = 8;
    double Seconds = 0.0;
    G.transfers().submit(
        Spec, [&](const TransferResult &T) { Seconds = T.totalSeconds(); });
    G.sim().run();
    TotalSeconds += Seconds;
  }
  return TotalSeconds / Trials;
}

} // namespace

int main() {
  bench::banner("Ablation: larger number of sites",
                "paper future work: replica selection in dynamic, larger "
                "grids (4-32 sites)");

  Table T;
  T.setHeader({"sites", "cost-model (s)", "random (s)", "speedup"});
  std::map<size_t, double> Speedup;
  for (size_t Sites : {4u, 8u, 16u, 32u}) {
    double Cost = runScale(Sites, "cost-model", 99);
    double Rand = runScale(Sites, "random", 99);
    Speedup[Sites] = Rand / Cost;
    T.beginRow();
    T.add(static_cast<long long>(Sites));
    T.add(Cost, 1);
    T.add(Rand, 1);
    T.add(Speedup[Sites], 2);
  }
  T.print(stdout);
  std::printf("\n");

  bool AlwaysWins = true;
  for (auto &[Sites, S] : Speedup)
    AlwaysWins &= S > 1.0;
  bool GrowsOrHolds = Speedup[32] >= Speedup[4] * 0.8;
  bench::shapeCheck(AlwaysWins,
                    "cost model beats random selection at every scale");
  bench::shapeCheck(GrowsOrHolds,
                    "the advantage persists as the grid grows (more "
                    "heterogeneity to exploit)");
  return AlwaysWins && GrowsOrHolds ? 0 : 1;
}
