//===- bench/bench_ablation_scale.cpp -----------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: replica selection at larger site counts.
///
/// The paper's last future-work item: "extend our Data Grid testbed for
/// analyzing the performance of replica selection in a dynamic and larger
/// number of sites environment."  This bench synthesises grids of 4 to 32
/// sites (heterogeneous access links behind one backbone, one host per
/// site plus a client site), replicates one large file onto a third of the
/// sites, and compares the cost-model policy against random selection as
/// the grid grows.
///
/// The showcase sweep for the parallel runner: sites x policy x seeds are
/// fully independent trials, so `--seeds 8 --jobs 8` scales near-linearly
/// on a multi-core host while staying bit-identical to `--jobs 1`.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "exp/Options.h"
#include "grid/DataGrid.h"
#include "replica/ReplicaSelector.h"

#include <chrono>
#include <cstdlib>
#include <memory>

using namespace dgsim;
using namespace dgsim::units;

namespace {

/// Builds a synthetic star grid with \p NumSites server sites and returns
/// the mean fetch time of a 512 MB file over \p Trials selections under
/// the given policy, plus the grid's spec hash.  Each trial re-selects on
/// the live (dynamic) grid and fetches sequentially.
exp::TrialResult runScale(size_t NumSites, const std::string &Which,
                          uint64_t Seed) {
  DataGrid G(Seed);
  RandomEngine Topology(Seed * 7919 + NumSites);

  SiteConfig Client;
  Client.Name = "client-site";
  Client.Hosts.resize(1);
  Client.Hosts[0].Name = "client";
  G.addSite(Client);

  for (size_t I = 0; I < NumSites; ++I) {
    SiteConfig S;
    S.Name = "site" + std::to_string(I);
    S.Hosts.resize(1);
    SiteHostSpec &H = S.Hosts[0];
    H.Name = "server" + std::to_string(I);
    H.CpuSpeed = Topology.uniform(0.3, 1.2);
    H.CpuMeanLoad = Topology.uniform(0.05, 0.6);
    H.IoMeanLoad = Topology.uniform(0.05, 0.4);
    G.addSite(S);
  }

  NodeId Core = G.addBackboneNode("core");
  G.connectToBackbone("client-site", Core, gbps(1), 0.002, 1e-5);
  for (size_t I = 0; I < NumSites; ++I) {
    // Heterogeneous access links: a few fast, many mediocre, some awful.
    double Tier = Topology.uniform();
    BitRate Cap = Tier > 0.7 ? gbps(1) : Tier > 0.3 ? mbps(100) : mbps(20);
    SimTime Delay = Topology.uniform(0.002, 0.02);
    double Loss = Topology.uniform(1e-5, 3e-3);
    G.connectToBackbone("site" + std::to_string(I), Core, Cap, Delay, Loss);
  }
  G.finalize();

  G.catalog().registerFile("big-file", megabytes(512));
  size_t Replicas = std::max<size_t>(2, NumSites / 3);
  for (size_t I = 0; I < Replicas; ++I) {
    size_t Pick = (I * NumSites) / Replicas;
    G.catalog().addReplica("big-file",
                           *G.findHost("server" + std::to_string(Pick)));
  }

  std::unique_ptr<SelectionPolicy> Policy;
  if (Which == "cost-model")
    Policy = std::make_unique<CostModelPolicy>();
  else
    Policy = std::make_unique<RandomPolicy>(RandomEngine(Seed + 1));
  ReplicaSelector Sel(G.catalog(), G.info(), *Policy);

  Host *ClientHost = G.findHost("client");
  G.sim().runUntil(bench::WarmupSeconds);

  double TotalSeconds = 0.0;
  constexpr int Trials = 5;
  for (int Trial = 0; Trial < Trials; ++Trial) {
    SelectionResult R = Sel.select(ClientHost->node(), "big-file");
    TransferSpec Spec;
    Spec.Source = R.Chosen;
    Spec.Destination = ClientHost;
    Spec.FileBytes = megabytes(512);
    Spec.Protocol = TransferProtocol::GridFtpModeE;
    Spec.Streams = 8;
    double Seconds = 0.0;
    G.transfers().submit(
        Spec, [&](const TransferResult &T) { Seconds = T.totalSeconds(); });
    G.sim().run();
    TotalSeconds += Seconds;
  }
  exp::TrialResult Result;
  Result.set("mean_fetch_s", TotalSeconds / Trials);
  Result.SpecHash = G.spec().hash();
  Result.EventsExecuted = G.sim().eventsExecuted();
  return Result;
}

} // namespace

int main(int argc, char **argv) {
  exp::BenchOptions Opt =
      exp::parseBenchOptions(argc, argv, "abl-scale", /*BaseSeed=*/99);
  bench::banner("Ablation: larger number of sites",
                "paper future work: replica selection in dynamic, larger "
                "grids (4-32 sites)");

  exp::Scenario S;
  S.Id = Opt.Id;
  S.Title = "Cost model vs random selection as the grid grows";
  std::vector<std::string> Sites = {"4", "8", "16", "32"};
  if (Opt.Quick)
    Sites = {"4", "8"};
  S.Axes = {{"sites", Sites}, {"policy", {"cost-model", "random"}}};
  S.Seeds = Opt.seeds();
  S.Metrics = {"mean_fetch_s"};
  S.Run = [](const exp::TrialPoint &P) {
    return runScale(std::strtoull(P.param("sites").c_str(), nullptr, 10),
                    P.param("policy"), P.Seed);
  };
  auto T0 = std::chrono::steady_clock::now();
  std::vector<exp::TrialRecord> Records = exp::runScenario(S, Opt);
  double SweepWall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();

  Table T;
  T.setHeader({"sites", "cost-model (s)", "random (s)", "speedup"});
  std::vector<double> Speedups;
  auto At = [&](const std::string &N, const char *Policy) {
    double Sum = 0.0;
    size_t Count = 0;
    for (const exp::TrialRecord &R : Records)
      if (R.Point.param("sites") == N && R.Point.param("policy") == Policy) {
        Sum += R.Result.get("mean_fetch_s");
        ++Count;
      }
    return Sum / static_cast<double>(Count);
  };
  for (const std::string &N : Sites) {
    double Cost = At(N, "cost-model");
    double Rand = At(N, "random");
    Speedups.push_back(Rand / Cost);
    T.beginRow();
    T.add(static_cast<long long>(std::strtoll(N.c_str(), nullptr, 10)));
    T.add(Cost, 1);
    T.add(Rand, 1);
    T.add(Speedups.back(), 2);
  }
  T.print(stdout);
  std::printf("\n");

  bool AlwaysWins = true;
  for (double Sp : Speedups)
    AlwaysWins &= Sp > 1.0;
  bench::shapeCheck(AlwaysWins,
                    "cost model beats random selection at every scale");
  // The growth claim needs the full 4-32 span; the quick matrix stops at 8.
  if (!Opt.Quick) {
    bool GrowsOrHolds = Speedups.back() >= Speedups.front() * 0.8;
    bench::shapeCheck(GrowsOrHolds,
                      "the advantage persists as the grid grows (more "
                      "heterogeneity to exploit)");
  }
  uint64_t Events = 0;
  for (const exp::TrialRecord &R : Records)
    Events += R.Result.EventsExecuted;
  bench::printRunFooter(Events, SweepWall);
  return bench::exitCode();
}
