//===- bench/bench_ablation_eviction.cpp ----------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension: replication under constrained storage, with and without
/// eviction, under a popularity shift.
///
/// Grid storage elements are finite (the paper's Li-Zen nodes had 10 GB
/// disks), so replica *creation* needs an eviction policy — the OptorSim
/// line of work.  Five HIT-produced datasets are fetched by Li-Zen
/// clients through a site store that fits only two; halfway through, a
/// "new data release" inverts the popularity order.  Compared:
///
///   * frozen   -- no eviction: whatever replicated first stays forever;
///   * naive    -- LRU eviction with no admission control: every warm
///                 file displaces a resident one, and the replication
///                 traffic itself clogs the 30 Mb/s access link (thrash);
///   * admission -- LRU eviction, but only files hotter than the victim
///                 may displace it.
///
/// The shift is where eviction earns its keep: a frozen store keeps
/// serving yesterday's hot files over the LAN while today's arrive over
/// the WAN.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "grid/DynamicReplicator.h"
#include "grid/Experiment.h"
#include "replica/StorageElement.h"

#include <map>

using namespace dgsim;
using namespace dgsim::units;

namespace {

struct EvictionRunResult {
  double Phase1Transfer = 0.0; // Mean transfer, first workload.
  double Phase2Transfer = 0.0; // Mean transfer after the shift.
  uint64_t Replications = 0;
  uint64_t Evictions = 0;
};

EvictionRunResult run(EvictionPolicy Policy, bool Admission) {
  PaperTestbedOptions O;
  O.DynamicLoad = false;
  O.CrossTraffic = false;
  PaperTestbed T(O);
  ReplicaCatalog &Cat = T.grid().catalog();
  std::vector<std::string> Names;
  for (int I = 0; I < 5; ++I) {
    std::string Lfn = "ds-" + std::to_string(I);
    Cat.registerFile(Lfn, megabytes(400));
    Cat.addReplica(Lfn, T.hit(I % 4));
    Names.push_back(Lfn);
  }

  CostModelPolicy CmPolicy;
  ReplicaSelector Sel(Cat, T.grid().info(), CmPolicy);
  ReplicaManager Manager(Cat, Sel, T.grid().transfers());
  StorageManager SM(Cat, Policy);
  SM.attachStore(T.lz(1), megabytes(900)); // Fits two datasets.

  DynamicReplicationConfig C;
  C.AccessThreshold = 2;
  C.Window = 7200.0;
  C.MaxReplicasPerFile = 8;
  C.HotnessAdmission = Admission;
  DynamicReplicator Rep(T.grid(), Manager, C);
  Rep.setStorageManager(&SM);
  Rep.setStorageHost("lizen", T.lz(1));

  auto RunPhase = [&](const std::vector<std::string> &Popularity) {
    WorkloadConfig W;
    W.JobCount = 20;
    W.MeanInterarrival = 240.0;
    W.ZipfExponent = 1.4;
    W.Files = Popularity;
    W.App.Streams = 8;
    Workload Load(T.grid(), Sel, {&T.lz(2), &T.lz(3), &T.lz(4)}, W);
    Load.setJobObserver([&Rep](const JobRecord &R) { Rep.onJob(R); });
    Load.start();
    T.sim().run();
    return Load.stats().TransferSeconds.mean();
  };

  T.sim().runUntil(bench::WarmupSeconds);
  EvictionRunResult Out;
  Out.Phase1Transfer = RunPhase(Names); // ds-0/ds-1 hot.
  std::vector<std::string> Shifted(Names.rbegin(), Names.rend());
  Out.Phase2Transfer = RunPhase(Shifted); // ds-4/ds-3 hot.
  Out.Replications = Rep.replicationsCompleted();
  Out.Evictions = SM.evictions();
  return Out;
}

} // namespace

int main() {
  bench::banner("Extension: eviction under a popularity shift",
                "5 datasets through a 2-dataset store; frozen vs naive "
                "LRU vs LRU+admission");

  struct Config {
    const char *Name;
    EvictionPolicy Policy;
    bool Admission;
  };
  const Config Configs[] = {
      {"frozen (no eviction)", EvictionPolicy::None, true},
      {"naive LRU", EvictionPolicy::Lru, false},
      {"LRU + admission", EvictionPolicy::Lru, true},
  };

  Table T;
  T.setHeader({"configuration", "phase-1 transfer (s)",
               "phase-2 transfer (s)", "replications", "evictions"});
  std::map<std::string, EvictionRunResult> Results;
  for (const Config &C : Configs) {
    Results[C.Name] = run(C.Policy, C.Admission);
    const EvictionRunResult &R = Results[C.Name];
    T.beginRow();
    T.add(std::string(C.Name));
    T.add(R.Phase1Transfer, 1);
    T.add(R.Phase2Transfer, 1);
    T.add(static_cast<long long>(R.Replications));
    T.add(static_cast<long long>(R.Evictions));
  }
  T.print(stdout);
  std::printf("\n");

  // What the sweep shows: under this light load, free (naive) eviction
  // adapts to the shift fastest and wins phase 2; admission control is
  // deliberately conservative — it evicts less (no thrash risk) at the
  // price of slower adaptation.  Under heavy load the ordering flips:
  // naive eviction floods the 30 Mb/s access link with replication
  // traffic (observed 5x slowdowns in the overloaded regime), which is
  // precisely what admission control prevents.
  const EvictionRunResult &Frozen = Results["frozen (no eviction)"];
  const EvictionRunResult &Naive = Results["naive LRU"];
  const EvictionRunResult &Adm = Results["LRU + admission"];
  bool NaiveAdaptsToShift =
      Naive.Phase2Transfer < Frozen.Phase2Transfer * 0.9;
  bool AdmissionChurnsLess = Adm.Evictions < Naive.Evictions;
  bool FrozenNeverEvicts = Frozen.Evictions == 0;
  bench::shapeCheck(NaiveAdaptsToShift,
                    "after the shift, LRU eviction beats the frozen store "
                    "by >10% (it hosts today's hot files)");
  bench::shapeCheck(AdmissionChurnsLess,
                    "admission control evicts less than naive LRU "
                    "(thrash guard)");
  bench::shapeCheck(FrozenNeverEvicts, "the frozen store never evicts");
  return NaiveAdaptsToShift && AdmissionChurnsLess && FrozenNeverEvicts
             ? 0
             : 1;
}
