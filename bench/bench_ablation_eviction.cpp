//===- bench/bench_ablation_eviction.cpp ----------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension: replication under constrained storage, with and without
/// eviction, under a popularity shift.
///
/// Grid storage elements are finite (the paper's Li-Zen nodes had 10 GB
/// disks), so replica *creation* needs an eviction policy — the OptorSim
/// line of work.  Five HIT-produced datasets are fetched by Li-Zen
/// clients through a site store that fits only two; halfway through, a
/// "new data release" inverts the popularity order.  Compared:
///
///   * frozen   -- no eviction: whatever replicated first stays forever;
///   * naive    -- LRU eviction with no admission control: every warm
///                 file displaces a resident one, and the replication
///                 traffic itself clogs the 30 Mb/s access link (thrash);
///   * admission -- LRU eviction, but only files hotter than the victim
///                 may displace it.
///
/// The shift is where eviction earns its keep: a frozen store keeps
/// serving yesterday's hot files over the LAN while today's arrive over
/// the WAN.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "exp/Options.h"
#include "grid/DynamicReplicator.h"
#include "grid/Experiment.h"
#include "replica/StorageElement.h"

using namespace dgsim;
using namespace dgsim::units;

namespace {

exp::TrialResult run(EvictionPolicy Policy, bool Admission, uint64_t Seed) {
  PaperTestbedOptions O;
  O.Seed = Seed;
  O.DynamicLoad = false;
  O.CrossTraffic = false;
  PaperTestbed T(O);
  ReplicaCatalog &Cat = T.grid().catalog();
  std::vector<std::string> Names;
  for (int I = 0; I < 5; ++I) {
    std::string Lfn = "ds-" + std::to_string(I);
    Cat.registerFile(Lfn, megabytes(400));
    Cat.addReplica(Lfn, T.hit(I % 4));
    Names.push_back(Lfn);
  }

  CostModelPolicy CmPolicy;
  ReplicaSelector Sel(Cat, T.grid().info(), CmPolicy);
  ReplicaManager Manager(Cat, Sel, T.grid().transfers());
  StorageManager SM(Cat, Policy);
  SM.attachStore(T.lz(1), megabytes(900)); // Fits two datasets.

  DynamicReplicationConfig C;
  C.AccessThreshold = 2;
  C.Window = 7200.0;
  C.MaxReplicasPerFile = 8;
  C.HotnessAdmission = Admission;
  DynamicReplicator Rep(T.grid(), Manager, C);
  Rep.setStorageManager(&SM);
  Rep.setStorageHost("lizen", T.lz(1));

  auto RunPhase = [&](const std::vector<std::string> &Popularity) {
    WorkloadConfig W;
    W.JobCount = 20;
    W.MeanInterarrival = 240.0;
    W.ZipfExponent = 1.4;
    W.Files = Popularity;
    W.App.Streams = 8;
    Workload Load(T.grid(), Sel, {&T.lz(2), &T.lz(3), &T.lz(4)}, W);
    Load.setJobObserver([&Rep](const JobRecord &R) { Rep.onJob(R); });
    Load.start();
    T.sim().run();
    return Load.stats().TransferSeconds.mean();
  };

  T.sim().runUntil(bench::WarmupSeconds);
  exp::TrialResult Result;
  Result.set("phase1_s", RunPhase(Names)); // ds-0/ds-1 hot.
  std::vector<std::string> Shifted(Names.rbegin(), Names.rend());
  Result.set("phase2_s", RunPhase(Shifted)); // ds-4/ds-3 hot.
  Result.set("replications",
             static_cast<double>(Rep.replicationsCompleted()));
  Result.set("evictions", static_cast<double>(SM.evictions()));
  Result.SpecHash = T.grid().spec().hash();
  return Result;
}

} // namespace

int main(int argc, char **argv) {
  exp::BenchOptions Opt =
      exp::parseBenchOptions(argc, argv, "abl-eviction", /*BaseSeed=*/2005);
  bench::banner("Extension: eviction under a popularity shift",
                "5 datasets through a 2-dataset store; frozen vs naive "
                "LRU vs LRU+admission");

  exp::Scenario S;
  S.Id = Opt.Id;
  S.Title = "Eviction policies under a popularity shift";
  S.Axes = {{"config", {"frozen", "naive-lru", "lru-admission"}}};
  S.Seeds = Opt.seeds();
  S.Metrics = {"phase1_s", "phase2_s", "replications", "evictions"};
  S.Run = [](const exp::TrialPoint &P) {
    const std::string &C = P.param("config");
    if (C == "frozen")
      return run(EvictionPolicy::None, /*Admission=*/true, P.Seed);
    if (C == "naive-lru")
      return run(EvictionPolicy::Lru, /*Admission=*/false, P.Seed);
    return run(EvictionPolicy::Lru, /*Admission=*/true, P.Seed);
  };
  std::vector<exp::TrialRecord> Records = exp::runScenario(S, Opt);

  const char *Labels[] = {"frozen (no eviction)", "naive LRU",
                          "LRU + admission"};
  auto Mean = [&](const char *Config, const char *Metric) {
    return exp::meanMetric(Records, "config", Config, Metric);
  };
  Table T;
  T.setHeader({"configuration", "phase-1 transfer (s)",
               "phase-2 transfer (s)", "replications", "evictions"});
  for (size_t I = 0; I < 3; ++I) {
    const std::string &C = S.Axes[0].Values[I];
    T.beginRow();
    T.add(std::string(Labels[I]));
    T.add(Mean(C.c_str(), "phase1_s"), 1);
    T.add(Mean(C.c_str(), "phase2_s"), 1);
    T.add(static_cast<long long>(Mean(C.c_str(), "replications")));
    T.add(static_cast<long long>(Mean(C.c_str(), "evictions")));
  }
  T.print(stdout);
  std::printf("\n");

  // What the sweep shows: under this light load, free (naive) eviction
  // adapts to the shift fastest and wins phase 2; admission control is
  // deliberately conservative — it evicts less (no thrash risk) at the
  // price of slower adaptation.  Under heavy load the ordering flips:
  // naive eviction floods the 30 Mb/s access link with replication
  // traffic (observed 5x slowdowns in the overloaded regime), which is
  // precisely what admission control prevents.
  bool NaiveAdaptsToShift =
      Mean("naive-lru", "phase2_s") < Mean("frozen", "phase2_s") * 0.9;
  bool AdmissionChurnsLess =
      Mean("lru-admission", "evictions") < Mean("naive-lru", "evictions");
  bool FrozenNeverEvicts = Mean("frozen", "evictions") == 0.0;
  bench::shapeCheck(NaiveAdaptsToShift,
                    "after the shift, LRU eviction beats the frozen store "
                    "by >10% (it hosts today's hot files)");
  bench::shapeCheck(AdmissionChurnsLess,
                    "admission control evicts less than naive LRU "
                    "(thrash guard)");
  bench::shapeCheck(FrozenNeverEvicts, "the frozen store never evicts");
  return bench::exitCode();
}
