//===- bench/bench_fig2_testbed.cpp -------------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Fig 2 (the Data Grid testbed diagram) as an
/// inventory: the three sites with their hardware classes and network
/// configuration, every host, and every link of the simulated topology.
/// The shape checks pin the testbed to the paper's §4 description: three
/// sites of four PCs, 1 Gb/s access at THU and HIT, 30 Mb/s at Li-Zen,
/// and the relative CPU speed ordering P4 2.8 > AthlonMP 2.0 > Celeron 900.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace dgsim;
using namespace dgsim::units;

int main() {
  bench::banner("Fig 2: the Data Grid testbed",
                "site/host/link inventory of the THU + Li-Zen + HIT grid");

  PaperTestbedOptions Options;
  Options.DynamicLoad = false;
  Options.CrossTraffic = false;
  PaperTestbed T(Options);
  DataGrid &G = T.grid();

  Table Sites;
  Sites.setHeader({"site", "hosts", "cpu speed", "NIC", "disk read"});
  for (const char *Name : {"thu", "lizen", "hit"}) {
    Site *S = G.findSite(Name);
    const Host &H = S->host(0);
    Sites.beginRow();
    Sites.add(S->name());
    Sites.add(static_cast<long long>(S->hostCount()));
    Sites.add(H.config().CpuSpeed, 2);
    Sites.add(fmt::rate(H.config().NicRate));
    Sites.add(fmt::rate(H.config().DiskCfg.ReadRate));
  }
  Sites.print(stdout);
  std::printf("\n");

  Table Hosts;
  Hosts.setHeader({"host", "site", "mean cpu load", "mean io load"});
  for (const char *SiteName : {"thu", "lizen", "hit"}) {
    Site *S = G.findSite(SiteName);
    for (const auto &H : S->hosts()) {
      Hosts.beginRow();
      Hosts.add(H->name());
      Hosts.add(S->name());
      Hosts.add(H->config().Cpu.MeanLoad, 2);
      Hosts.add(H->config().DiskCfg.Background.MeanLoad, 2);
    }
  }
  Hosts.print(stdout);
  std::printf("\n");

  Table Links;
  Links.setHeader({"link", "endpoints", "capacity", "delay (ms)", "loss"});
  const Topology &Topo = G.topology();
  for (LinkId L = 0; L != Topo.linkCount(); ++L) {
    const NetLink &Ln = Topo.link(L);
    Links.beginRow();
    Links.add(static_cast<long long>(L));
    Links.add(Topo.node(Ln.A).Name + " -- " + Topo.node(Ln.B).Name);
    Links.add(fmt::rate(Ln.Capacity));
    Links.add(Ln.Delay * 1e3, 1);
    Links.add(Ln.LossRate, 5);
  }
  Links.print(stdout);
  std::printf("\n");

  bool ThreeSitesOfFour = G.findSite("thu")->hostCount() == 4 &&
                          G.findSite("lizen")->hostCount() == 4 &&
                          G.findSite("hit")->hostCount() == 4;
  // Access links are the last three (site switch -- tanet).
  double ThuAccess = 0, LzAccess = 0, HitAccess = 0;
  NodeId Tanet = Topo.findNode("tanet");
  for (LinkId L = 0; L != Topo.linkCount(); ++L) {
    const NetLink &Ln = Topo.link(L);
    if (Ln.A != Tanet && Ln.B != Tanet)
      continue;
    NodeId Other = Ln.A == Tanet ? Ln.B : Ln.A;
    if (Topo.node(Other).Name == "thu-sw")
      ThuAccess = Ln.Capacity;
    else if (Topo.node(Other).Name == "lizen-sw")
      LzAccess = Ln.Capacity;
    else if (Topo.node(Other).Name == "hit-sw")
      HitAccess = Ln.Capacity;
  }
  bool AccessRates = ThuAccess == gbps(1) && HitAccess == gbps(1) &&
                     LzAccess == mbps(30);
  bool CpuOrder = T.hit(0).config().CpuSpeed > T.alpha(1).config().CpuSpeed &&
                  T.alpha(1).config().CpuSpeed > T.lz(1).config().CpuSpeed;
  bench::shapeCheck(ThreeSitesOfFour, "three sites of four PCs each");
  bench::shapeCheck(AccessRates,
                    "1 Gb/s access at THU and HIT, 30 Mb/s at Li-Zen");
  bench::shapeCheck(CpuOrder,
                    "CPU speed order: P4 2.8 > AthlonMP 2.0 > Celeron 900");
  return bench::exitCode();
}
