//===- bench/bench_ablation_policies.cpp --------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: replica selection policy comparison under a dynamic workload.
///
/// The paper validates its cost model on a single three-replica lookup
/// (Table 1); its future work asks for "the performance of replica
/// selection in a dynamic and larger number of sites environment".  This
/// bench runs an identical Poisson/Zipf job mix under every selection
/// policy — the paper's cost model, NWS-greedy bandwidth-only (Vazhkudai
/// et al.), least-loaded-CPU, round-robin and random — each on a fresh,
/// identically seeded testbed, and reports mean/95th-percentile transfer
/// time and job completion time.
///
/// Runs on the ExperimentRunner: `--seeds N --jobs M` sweeps N testbed
/// seeds per policy in parallel; the summary table averages over seeds.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "exp/Options.h"
#include "grid/Experiment.h"
#include "support/Statistics.h"

#include <memory>

using namespace dgsim;
using namespace dgsim::units;

namespace {

exp::TrialResult runPolicy(const std::string &Which, uint64_t Seed) {
  PaperTestbedOptions O;
  O.Seed = Seed;
  PaperTestbed T(O); // Dynamic load + cross traffic.
  // A small catalogue of large files spread over the grid.
  struct FileSpec {
    const char *Lfn;
    double SizeMB;
    const char *Holders[2];
  };
  const FileSpec Files[] = {
      {"genome-db", 1024, {"alpha4", "hit0"}},
      {"event-set", 512, {"hit1", "lz02"}},
      {"survey-img", 768, {"alpha3", "hit2"}},
      {"archive-03", 256, {"lz01", "hit0"}},
  };
  for (const FileSpec &F : Files) {
    CatalogFileSpec C;
    C.Lfn = F.Lfn;
    C.SizeBytes = megabytes(F.SizeMB);
    C.ReplicaHosts = {F.Holders[0], F.Holders[1]};
    T.grid().registerCatalogFile(C);
  }

  std::unique_ptr<SelectionPolicy> Policy;
  if (Which == "cost-model")
    Policy = std::make_unique<CostModelPolicy>();
  else if (Which == "bandwidth-only")
    Policy = std::make_unique<BandwidthOnlyPolicy>();
  else if (Which == "least-loaded-cpu")
    Policy = std::make_unique<LeastLoadedCpuPolicy>();
  else if (Which == "round-robin")
    Policy = std::make_unique<RoundRobinPolicy>();
  else
    Policy = std::make_unique<RandomPolicy>(RandomEngine(12345));

  ReplicaSelector Sel(T.grid().catalog(), T.grid().info(), *Policy);
  WorkloadConfig W;
  W.JobCount = 40;
  W.MeanInterarrival = 45.0;
  W.ZipfExponent = 0.8;
  W.App.Streams = 8;
  Workload Load(T.grid(), Sel,
                {&T.alpha(1), &T.alpha(2), &T.hit(3), &T.lz(3)}, W);
  T.sim().runUntil(bench::WarmupSeconds);
  Load.start();
  T.sim().run();

  const ExperimentStats &S = Load.stats();
  std::vector<double> Transfers;
  for (const JobRecord &R : S.Records)
    if (!R.LocalHit)
      Transfers.push_back(R.transferSeconds());

  exp::TrialResult Result;
  Result.set("mean_transfer_s", S.TransferSeconds.mean());
  Result.set("p95_transfer_s", stats::percentile(Transfers, 0.95));
  Result.set("mean_job_s", S.TotalSeconds.mean());
  Result.SpecHash = T.grid().spec().hash();
  return Result;
}

} // namespace

int main(int argc, char **argv) {
  exp::BenchOptions Opt =
      exp::parseBenchOptions(argc, argv, "abl-policies", /*BaseSeed=*/2005);
  bench::banner("Ablation: selection policy comparison",
                "extends Table 1 to a dynamic Poisson/Zipf workload "
                "(paper future work: dynamic environments)");

  exp::Scenario S;
  S.Id = Opt.Id;
  S.Title = "Replica selection policy comparison, dynamic workload";
  S.Axes = {{"policy",
             {"cost-model", "bandwidth-only", "least-loaded-cpu",
              "round-robin", "random"}}};
  S.Seeds = Opt.seeds();
  S.Metrics = {"mean_transfer_s", "p95_transfer_s", "mean_job_s"};
  S.Run = [](const exp::TrialPoint &P) {
    return runPolicy(P.param("policy"), P.Seed);
  };

  std::vector<exp::TrialRecord> Records = exp::runScenario(S, Opt);

  Table T;
  T.setHeader({"policy", "mean transfer (s)", "p95 transfer (s)",
               "mean job time (s)"});
  auto Mean = [&](const std::string &Policy, const char *Metric) {
    return exp::meanMetric(Records, "policy", Policy, Metric);
  };
  for (const std::string &P : S.Axes[0].Values) {
    T.beginRow();
    T.add(P);
    T.add(Mean(P, "mean_transfer_s"), 1);
    T.add(Mean(P, "p95_transfer_s"), 1);
    T.add(Mean(P, "mean_job_s"), 1);
  }
  T.print(stdout);
  std::printf("\n");

  double CostModel = Mean("cost-model", "mean_transfer_s");
  bool BeatsBlind = CostModel < Mean("random", "mean_transfer_s") &&
                    CostModel < Mean("round-robin", "mean_transfer_s") &&
                    CostModel < Mean("least-loaded-cpu", "mean_transfer_s");
  bool NearBandwidthOnly =
      CostModel < Mean("bandwidth-only", "mean_transfer_s") * 1.10;
  bench::shapeCheck(BeatsBlind,
                    "cost model beats random, round-robin and CPU-greedy "
                    "on mean transfer time");
  bench::shapeCheck(NearBandwidthOnly,
                    "cost model within 10% of bandwidth-only (bandwidth "
                    "dominates, as the 80/10/10 weights assume)");
  return bench::exitCode();
}
