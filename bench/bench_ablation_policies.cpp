//===- bench/bench_ablation_policies.cpp --------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: replica selection policy comparison under a dynamic workload.
///
/// The paper validates its cost model on a single three-replica lookup
/// (Table 1); its future work asks for "the performance of replica
/// selection in a dynamic and larger number of sites environment".  This
/// bench runs an identical Poisson/Zipf job mix under every selection
/// policy — the paper's cost model, NWS-greedy bandwidth-only (Vazhkudai
/// et al.), least-loaded-CPU, round-robin and random — each on a fresh,
/// identically seeded testbed, and reports mean/95th-percentile transfer
/// time and job completion time.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "grid/Experiment.h"
#include "support/Statistics.h"

#include <map>
#include <memory>

using namespace dgsim;
using namespace dgsim::units;

namespace {

struct PolicyRun {
  std::string Name;
  double MeanTransfer = 0.0;
  double P95Transfer = 0.0;
  double MeanTotal = 0.0;
};

PolicyRun runPolicy(const std::string &Which) {
  PaperTestbed T; // Dynamic load + cross traffic.
  // A small catalogue of large files spread over the grid.
  ReplicaCatalog &Cat = T.grid().catalog();
  struct FileSpec {
    const char *Lfn;
    double SizeMB;
    const char *Holders[2];
  };
  const FileSpec Files[] = {
      {"genome-db", 1024, {"alpha4", "hit0"}},
      {"event-set", 512, {"hit1", "lz02"}},
      {"survey-img", 768, {"alpha3", "hit2"}},
      {"archive-03", 256, {"lz01", "hit0"}},
  };
  for (const FileSpec &F : Files) {
    Cat.registerFile(F.Lfn, megabytes(F.SizeMB));
    for (const char *H : F.Holders)
      Cat.addReplica(F.Lfn, *T.grid().findHost(H));
  }

  std::unique_ptr<SelectionPolicy> Policy;
  if (Which == "cost-model")
    Policy = std::make_unique<CostModelPolicy>();
  else if (Which == "bandwidth-only")
    Policy = std::make_unique<BandwidthOnlyPolicy>();
  else if (Which == "least-loaded-cpu")
    Policy = std::make_unique<LeastLoadedCpuPolicy>();
  else if (Which == "round-robin")
    Policy = std::make_unique<RoundRobinPolicy>();
  else
    Policy = std::make_unique<RandomPolicy>(RandomEngine(12345));

  ReplicaSelector Sel(Cat, T.grid().info(), *Policy);
  WorkloadConfig W;
  W.JobCount = 40;
  W.MeanInterarrival = 45.0;
  W.ZipfExponent = 0.8;
  W.App.Streams = 8;
  Workload Load(T.grid(), Sel,
                {&T.alpha(1), &T.alpha(2), &T.hit(3), &T.lz(3)}, W);
  T.sim().runUntil(bench::WarmupSeconds);
  Load.start();
  T.sim().run();

  const ExperimentStats &S = Load.stats();
  std::vector<double> Transfers;
  for (const JobRecord &R : S.Records)
    if (!R.LocalHit)
      Transfers.push_back(R.transferSeconds());

  PolicyRun Out;
  Out.Name = Which;
  Out.MeanTransfer = S.TransferSeconds.mean();
  Out.P95Transfer = stats::percentile(Transfers, 0.95);
  Out.MeanTotal = S.TotalSeconds.mean();
  return Out;
}

} // namespace

int main() {
  bench::banner("Ablation: selection policy comparison",
                "extends Table 1 to a dynamic Poisson/Zipf workload "
                "(paper future work: dynamic environments)");

  const char *Policies[] = {"cost-model", "bandwidth-only",
                            "least-loaded-cpu", "round-robin", "random"};
  Table T;
  T.setHeader({"policy", "mean transfer (s)", "p95 transfer (s)",
               "mean job time (s)"});
  std::map<std::string, PolicyRun> Runs;
  for (const char *P : Policies) {
    PolicyRun R = runPolicy(P);
    Runs[P] = R;
    T.beginRow();
    T.add(R.Name);
    T.add(R.MeanTransfer, 1);
    T.add(R.P95Transfer, 1);
    T.add(R.MeanTotal, 1);
  }
  T.print(stdout);
  std::printf("\n");

  bool BeatsBlind =
      Runs["cost-model"].MeanTransfer < Runs["random"].MeanTransfer &&
      Runs["cost-model"].MeanTransfer < Runs["round-robin"].MeanTransfer &&
      Runs["cost-model"].MeanTransfer <
          Runs["least-loaded-cpu"].MeanTransfer;
  bool NearBandwidthOnly =
      Runs["cost-model"].MeanTransfer <
      Runs["bandwidth-only"].MeanTransfer * 1.10;
  bench::shapeCheck(BeatsBlind,
                    "cost model beats random, round-robin and CPU-greedy "
                    "on mean transfer time");
  bench::shapeCheck(NearBandwidthOnly,
                    "cost model within 10% of bandwidth-only (bandwidth "
                    "dominates, as the 80/10/10 weights assume)");
  return BeatsBlind && NearBandwidthOnly ? 0 : 1;
}
