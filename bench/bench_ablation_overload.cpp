//===- bench/bench_ablation_overload.cpp ---------------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: overload control under sustained open-loop load.
///
/// The paper's experiments measure a quiet testbed one transfer at a time.
/// This bench asks the follow-up question a production replica service
/// faces: what happens when requests keep arriving *faster* than the
/// Li-Zen access link can serve them?  An open-loop Poisson stream of
/// 32 MB fetches is driven at a multiple of the path's saturation rate,
/// with a mid-run storage outage at one replica site, and two arms are
/// compared:
///
///   * off -- no admission control, no circuit breakers: every arrival
///     starts transferring immediately and shares the link; under
///     sustained overload the in-flight population grows, per-flow rates
///     collapse, and fetches blow their deadlines *after* moving bytes.
///
///   * on  -- per-destination admission (bounded queue, shed-oldest) plus
///     a health tracker whose per-site breaker gates selection away from
///     the faulted replica: excess load is shed before it moves a byte
///     and admitted fetches finish well inside their deadlines.
///
/// Reported per offered load: goodput (MB/s of successfully fetched
/// payload over the busy period), p99 admission-queue wait, and the
/// fractions shed / deadline-expired.  The shape checks pin the graceful-
/// degradation claim: with controls on, goodput at 2x saturation holds
/// within 15% of the arm's peak, while the uncontrolled arm degrades
/// measurably more.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "exp/Options.h"
#include "grid/Workload.h"
#include "replica/HealthTracker.h"
#include "replica/ReplicaManager.h"
#include "support/Statistics.h"

#include <cstdlib>

using namespace dgsim;
using namespace dgsim::units;

namespace {

constexpr Bytes FileBytes = 32.0 * 1024.0 * 1024.0;
/// Li-Zen's 30 Mb/s access link in payload terms: the saturation point of
/// the fetch path every client shares.
constexpr double SaturationBytesPerSec = 30e6 / 8.0;
constexpr SimTime LoadStart = 10.0;
constexpr SimTime LoadDuration = 240.0;
constexpr SimTime FetchDeadline = 150.0;

exp::TrialResult runOverload(double LoadMultiplier, bool ControlsOn,
                             uint64_t Seed) {
  PaperTestbedOptions O;
  O.Seed = Seed;
  O.DynamicLoad = false;
  O.CrossTraffic = false;
  GridSpec Spec = PaperTestbed::spec(O);

  // A small catalog replicated at THU and HIT: every fetch crosses the
  // WAN into Li-Zen, so the 30 Mb/s access link is the shared bottleneck.
  std::vector<std::string> Lfns;
  for (int I = 0; I < 8; ++I) {
    std::string Lfn = "ov-" + std::to_string(I);
    Lfns.push_back(Lfn);
    Spec.Files.push_back(
        {Lfn, FileBytes, {I % 2 ? "alpha4" : "alpha3", "hit0"}});
  }

  WorkloadSpec Load;
  Load.Name = "overload";
  Load.Start = LoadStart;
  Load.Duration = LoadDuration;
  Load.ArrivalsPerSecond =
      LoadMultiplier * SaturationBytesPerSec / FileBytes;
  Load.Clients = {"lz01", "lz02", "lz03", "lz04"};
  Load.Lfns = Lfns;
  Spec.Workloads.push_back(Load);

  // Mid-run disaster: THU's access link drops for two minutes.  The
  // alpha hosts still *look* healthy (they answer monitoring), but every
  // transfer from them stalls until the watchdog gives up — the breaker
  // arm learns after a few failures to route around them, the
  // uncontrolled arm pays the stall-and-failover tax on every fetch.
  Spec.Faults.linkDown("thu", "tanet", 60.0, 120.0);

  std::unique_ptr<DataGrid> G = DataGrid::buildFrom(Spec);

  RetryPolicy RP;
  RP.StallTimeout = 10.0;
  RP.BackoffBase = 0.5;
  RP.BackoffMax = 4.0;
  RP.MaxAttempts = 2;
  G->transfers().setRetryPolicy(RP);

  if (ControlsOn) {
    AdmissionPolicy AP;
    AP.MaxActivePerDestination = 1;
    AP.QueueDepth = 3;
    AP.Shed = ShedPolicy::ShedOldest;
    G->transfers().setAdmissionPolicy(AP);
  }

  CostModelPolicy Policy;
  ReplicaSelector Sel(G->catalog(), G->info(), Policy);
  HealthConfig HC;
  HC.MinSamples = 2;
  HC.OpenSeconds = 30.0;
  HealthTracker Health(G->sim(), HC);
  if (ControlsOn)
    Sel.setHealthTracker(&Health);
  ReplicaManager Mgr(G->catalog(), Sel, G->transfers());

  WorkloadDriver Driver(*G, Mgr);
  FetchOptions FO;
  FO.Streams = 4;
  FO.MaxFailovers = 2;
  FO.Register = false; // Keep every fetch remote and comparable.
  FO.DeadlineSeconds = FetchDeadline;
  Driver.start(0, FO);
  G->sim().run();

  const WorkloadCounters &C = Driver.counters();
  // The busy period: first arrival until the last fetch resolved (the
  // kernel drains everything, so now() is when the system went idle).
  double Busy = G->sim().now() - LoadStart;
  double N = static_cast<double>(C.Arrivals);

  exp::TrialResult Result;
  Result.set("goodput_mbps", C.GoodputBytes / Busy / (1024.0 * 1024.0));
  Result.set("p99_queue_s",
             C.QueueWaitSeconds.empty()
                 ? 0.0
                 : stats::percentile(C.QueueWaitSeconds, 0.99));
  Result.set("shed_frac", N ? static_cast<double>(C.Shed) / N : 0.0);
  Result.set("expired_frac",
             N ? static_cast<double>(C.DeadlineExpired) / N : 0.0);
  Result.set("completed", static_cast<double>(C.Completed));
  Result.set("failed", static_cast<double>(C.Failed));
  Result.set("wasted_mb", C.WastedBytes / (1024.0 * 1024.0));
  Result.set("breaker_trips", static_cast<double>(Health.totalTrips()));
  Result.set("unresolved",
             static_cast<double>(C.Arrivals) -
                 static_cast<double>(C.resolved()));
  Result.SpecHash = G->spec().hash();
  return Result;
}

} // namespace

int main(int argc, char **argv) {
  exp::BenchOptions Opt =
      exp::parseBenchOptions(argc, argv, "abl-overload", /*BaseSeed=*/91);
  bench::banner("Ablation: overload control under sustained load",
                "admission + breakers vs none: goodput, p99 queue wait and "
                "shed fraction vs offered load");

  std::vector<std::string> Loads =
      Opt.Quick ? std::vector<std::string>{"0.5", "2.0"}
                : std::vector<std::string>{"0.5", "1.0", "2.0"};
  exp::Scenario S;
  S.Id = Opt.Id;
  S.Title = "Goodput vs offered load, overload controls on/off";
  S.Axes = {{"controls", {"off", "on"}}, {"load_x", Loads}};
  S.Seeds = Opt.seeds();
  S.Metrics = {"goodput_mbps", "p99_queue_s", "shed_frac",
               "expired_frac", "completed",   "failed",
               "wasted_mb",    "breaker_trips", "unresolved"};
  S.Run = [](const exp::TrialPoint &P) {
    return runOverload(std::atof(P.param("load_x").c_str()),
                       P.param("controls") == "on", P.Seed);
  };
  std::vector<exp::TrialRecord> Records = exp::runScenario(S, Opt);

  auto Mean = [&](const std::string &Controls, const std::string &Load,
                  const char *Metric) {
    double Sum = 0.0;
    size_t N = 0;
    for (const exp::TrialRecord &R : Records)
      if (R.Point.param("controls") == Controls &&
          R.Point.param("load_x") == Load) {
        Sum += R.Result.get(Metric);
        ++N;
      }
    return N ? Sum / static_cast<double>(N) : 0.0;
  };

  Table T;
  T.setHeader({"load (x sat)", "controls", "goodput (MB/s)", "p99 queue (s)",
               "shed", "expired", "wasted (MB)", "trips"});
  for (const std::string &Load : Loads) {
    for (const std::string &Controls : {std::string("off"),
                                        std::string("on")}) {
      T.beginRow();
      T.add(Load);
      T.add(Controls);
      T.add(Mean(Controls, Load, "goodput_mbps"), 2);
      T.add(Mean(Controls, Load, "p99_queue_s"), 1);
      T.add(fmt::percent(Mean(Controls, Load, "shed_frac")));
      T.add(fmt::percent(Mean(Controls, Load, "expired_frac")));
      T.add(Mean(Controls, Load, "wasted_mb"), 1);
      T.add(Mean(Controls, Load, "breaker_trips"), 1);
    }
  }
  T.print(stdout);
  std::printf("\n");

  auto Peak = [&](const std::string &Controls) {
    double Best = 0.0;
    for (const std::string &Load : Loads)
      Best = std::max(Best, Mean(Controls, Load, "goodput_mbps"));
    return Best;
  };
  const std::string Overload = Loads.back(), Light = Loads.front();

  double Unresolved = 0.0;
  for (const exp::TrialRecord &R : Records)
    Unresolved += R.Result.get("unresolved");
  bench::shapeCheck(Unresolved == 0.0,
                    "every arrival resolves exactly once (completed + "
                    "failed + shed + expired == arrivals)");
  bench::shapeCheckGe(Mean("on", Overload, "goodput_mbps"),
                      0.85 * Peak("on"), "goodput_mbps",
                      "controls on: goodput at 2x saturation within 15% "
                      "of the arm's peak");
  double DegradationOff = 1.0 - Mean("off", Overload, "goodput_mbps") /
                                    Peak("off");
  double DegradationOn =
      1.0 - Mean("on", Overload, "goodput_mbps") / Peak("on");
  bench::shapeCheckGe(DegradationOff, DegradationOn + 0.10,
                      "relative_degradation",
                      "no controls: goodput collapses measurably more "
                      "under 2x overload");
  bench::shapeCheckGe(Mean("on", Overload, "shed_frac"),
                      Mean("on", Light, "shed_frac") + 1e-9, "shed_frac",
                      "shedding engages as offered load crosses "
                      "saturation");
  bench::shapeCheckLe(Mean("on", Overload, "p99_queue_s"), FetchDeadline,
                      "p99_queue_s",
                      "bounded queues keep p99 queue wait below the "
                      "fetch deadline");
  bench::shapeCheckGe(Mean("off", Overload, "expired_frac"),
                      Mean("on", Overload, "expired_frac") + 0.10,
                      "expired_frac",
                      "without admission, overload turns into mass "
                      "deadline expiry instead of clean shedding");
  bench::shapeCheckGe(Mean("on", Overload, "breaker_trips"), 1.0,
                      "breaker_trips",
                      "the faulted site's breaker trips while the load "
                      "is on");
  return bench::exitCode();
}
