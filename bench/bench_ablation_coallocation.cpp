//===- bench/bench_ablation_coallocation.cpp ----------------------------------===//
//
// Part of dgsim.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension: co-allocated multi-replica downloads.
///
/// Replica selection picks the single best server; the authors' follow-up
/// research line (co-allocation data grids) downloads disjoint file parts
/// from several replicas at once.  This bench fetches a 512 MB file to
/// hit3 whose replicas sit on two fast THU servers and one slow Li-Zen
/// server, comparing:
///
///   * single best server (the paper's cost-model selection),
///   * equal-split co-allocation over all three (brute force; the slow
///     server binds),
///   * bandwidth-proportional co-allocation (each server finishes
///     together).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "replica/CoAllocator.h"

#include <map>

using namespace dgsim;
using namespace dgsim::units;

namespace {

double runFetch(CoAllocationConfig C) {
  PaperTestbedOptions O;
  O.DynamicLoad = false;
  O.CrossTraffic = false;
  PaperTestbed T(O);
  ReplicaCatalog &Cat = T.grid().catalog();
  Cat.registerFile("file-x", megabytes(512));
  Cat.addReplica("file-x", T.alpha(3));
  Cat.addReplica("file-x", T.alpha(4));
  Cat.addReplica("file-x", T.lz(2));
  T.sim().runUntil(bench::WarmupSeconds);
  CoAllocator CA(Cat, T.grid().info(), T.grid().transfers(), C);
  double Seconds = -1.0;
  CA.fetch("file-x", T.hit(3),
           [&](const TransferResult &R) { Seconds = R.totalSeconds(); });
  T.sim().run();
  return Seconds;
}

} // namespace

int main() {
  bench::banner("Extension: co-allocated multi-replica downloads",
                "single-best vs equal-split vs bandwidth-proportional "
                "co-allocation, 512 MB to hit3");

  std::map<std::string, double> Seconds;
  Table T;
  T.setHeader({"strategy", "sources", "time (s)", "speedup vs single"});

  CoAllocationConfig Single;
  Single.MaxSources = 1;
  Single.StreamsPerSource = 8;
  Seconds["single"] = runFetch(Single);

  CoAllocationConfig Equal;
  Equal.MaxSources = 3;
  Equal.MinShare = 0.0;
  Equal.StreamsPerSource = 8;
  Equal.Scheme = CoAllocationScheme::EqualSplit;
  Seconds["equal"] = runFetch(Equal);

  CoAllocationConfig Prop = Equal;
  Prop.Scheme = CoAllocationScheme::BandwidthProportional;
  Seconds["proportional"] = runFetch(Prop);

  CoAllocationConfig PropTwo = Prop;
  PropTwo.MinShare = 0.10; // Drops the slow server entirely.
  Seconds["proportional+drop"] = runFetch(PropTwo);

  struct Row {
    const char *Name;
    const char *Sources;
    const char *Key;
  };
  const Row Rows[] = {
      {"single best (cost model)", "1", "single"},
      {"co-alloc equal split", "3", "equal"},
      {"co-alloc proportional", "3", "proportional"},
      {"co-alloc proportional, MinShare=0.1", "2", "proportional+drop"},
  };
  for (const Row &R : Rows) {
    T.beginRow();
    T.add(std::string(R.Name));
    T.add(std::string(R.Sources));
    T.add(Seconds[R.Key], 1);
    T.add(Seconds["single"] / Seconds[R.Key], 2);
  }
  T.print(stdout);
  std::printf("\n");

  // Keeping the 30 Mb/s server in the set buys nothing even with a tiny
  // share; filtering it out lets the two fast servers aggregate cleanly.
  bool FilteredWins =
      Seconds["proportional+drop"] < Seconds["single"] * 0.9;
  bool ProportionalNeverHurts =
      Seconds["proportional"] <= Seconds["single"] * 1.05;
  bool EqualSplitHurts = Seconds["equal"] > Seconds["proportional"] * 1.5;
  bench::shapeCheck(FilteredWins,
                    "filtered proportional co-allocation beats the single "
                    "best server (>10%)");
  bench::shapeCheck(ProportionalNeverHurts,
                    "proportional splitting never loses to single-best, "
                    "even with the slow server included");
  bench::shapeCheck(EqualSplitHurts,
                    "equal split is bound by the slowest server");
  return bench::exitCode();
}
